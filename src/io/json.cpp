#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace anr::json {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

void escape_to(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void number_to(std::ostringstream& os, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    os << static_cast<long long>(d);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    os << buf;
  }
}

void dump_to(std::ostringstream& os, const Value& v, int indent, int depth);

void dump_array(std::ostringstream& os, const Array& a, int indent, int depth) {
  if (a.empty()) {
    os << "[]";
    return;
  }
  os << '[';
  std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0,
                  ' ');
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (indent > 0) os << '\n' << pad;
    dump_to(os, a[i], indent, depth + 1);
    if (i + 1 < a.size()) os << ',';
  }
  if (indent > 0) {
    os << '\n'
       << std::string(static_cast<std::size_t>(indent * depth), ' ');
  }
  os << ']';
}

void dump_object(std::ostringstream& os, const Object& o, int indent, int depth) {
  if (o.empty()) {
    os << "{}";
    return;
  }
  os << '{';
  std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0,
                  ' ');
  std::size_t i = 0;
  for (const auto& [k, v] : o) {
    if (indent > 0) os << '\n' << pad;
    escape_to(os, k);
    os << (indent > 0 ? ": " : ":");
    dump_to(os, v, indent, depth + 1);
    if (++i < o.size()) os << ',';
  }
  if (indent > 0) {
    os << '\n'
       << std::string(static_cast<std::size_t>(indent * depth), ' ');
  }
  os << '}';
}

void dump_to(std::ostringstream& os, const Value& v, int indent, int depth) {
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    number_to(os, v.as_number());
  } else if (v.is_string()) {
    escape_to(os, v.as_string());
  } else if (v.is_array()) {
    dump_array(os, v.as_array(), indent, depth);
  } else {
    dump_object(os, v.as_object(), indent, depth);
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) { throw ParseError(why, pos_); }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Value(string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default:
        return Value(number());
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace(std::move(key), value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(o));
      }
      fail("expected ',' or '}'");
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(a));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogates unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  double number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      fail("bad number");
    }
    try {
      return std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("unparseable number");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}

Array& Value::as_array() {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}

Object& Value::as_object() {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Value::has(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  dump_to(os, *this, indent, 0);
  return os.str();
}

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace anr::json
