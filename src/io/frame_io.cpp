#include "io/frame_io.h"

#include <cstring>

namespace anr {

namespace {

void put_u32(std::string* out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResponse:
      return "response";
    case FrameType::kResponsePlan:
      return "response_plan";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

void append_frame(std::string* out, FrameType type, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(5 + payload.size());
  append_frame(&out, type, payload);
  return out;
}

bool write_frame(std::ostream& out, FrameType type, std::string_view payload) {
  const std::string frame = encode_frame(type, payload);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  return static_cast<bool>(out);
}

FrameReadStatus read_frame(std::istream& in, Frame* frame,
                           std::string* error) {
  set_error(error, "");
  char header[5];
  in.read(header, 1);
  if (in.gcount() == 0) return FrameReadStatus::kEof;  // clean boundary
  in.read(header + 1, 4);
  if (in.gcount() != 4) {
    set_error(error, "truncated frame header");
    return FrameReadStatus::kError;
  }
  const std::uint32_t len = get_u32(header);
  const std::uint8_t type = static_cast<std::uint8_t>(header[4]);
  if (len > kMaxFramePayload) {
    set_error(error, "frame payload exceeds kMaxFramePayload");
    return FrameReadStatus::kError;
  }
  if (!valid_type(type)) {
    set_error(error, "unknown frame type");
    return FrameReadStatus::kError;
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.resize(len);
  if (len > 0) {
    in.read(frame->payload.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::uint32_t>(in.gcount()) != len) {
      set_error(error, "truncated frame payload");
      return FrameReadStatus::kError;
    }
  }
  return FrameReadStatus::kFrame;
}

std::string make_response_plan_payload(std::string_view result_json,
                                       std::string_view plan_bytes) {
  std::string out;
  out.reserve(4 + result_json.size() + plan_bytes.size());
  put_u32(&out, static_cast<std::uint32_t>(result_json.size()));
  out.append(result_json.data(), result_json.size());
  out.append(plan_bytes.data(), plan_bytes.size());
  return out;
}

bool split_response_plan_payload(std::string_view payload,
                                 std::string_view* result_json,
                                 std::string_view* plan_bytes,
                                 std::string* error) {
  set_error(error, "");
  if (payload.size() < 4) {
    set_error(error, "response_plan payload shorter than its length word");
    return false;
  }
  const std::uint32_t json_len = get_u32(payload.data());
  if (json_len > payload.size() - 4) {
    set_error(error, "response_plan JSON length exceeds payload");
    return false;
  }
  *result_json = payload.substr(4, json_len);
  *plan_bytes = payload.substr(4 + json_len);
  return true;
}

}  // namespace anr
