#include "io/job_io.h"

#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "net/connectivity.h"

namespace anr {

namespace {

json::Value polygon_to_json(const Polygon& p) {
  json::Array xs, ys;
  xs.reserve(p.size());
  ys.reserve(p.size());
  for (Vec2 q : p.points()) {
    xs.emplace_back(q.x);
    ys.emplace_back(q.y);
  }
  json::Object o;
  o.emplace("x", std::move(xs));
  o.emplace("y", std::move(ys));
  return json::Value(std::move(o));
}

Polygon polygon_from_json(const json::Value& v) {
  const auto& xs = v.at("x").as_array();
  const auto& ys = v.at("y").as_array();
  if (xs.size() != ys.size()) {
    throw std::runtime_error("polygon x/y arrays of unequal length");
  }
  std::vector<Vec2> pts;
  pts.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pts.push_back({xs[i].as_number(), ys[i].as_number()});
  }
  return Polygon(std::move(pts));
}

std::vector<Vec2> points_from_json(const json::Value& v) {
  const auto& xs = v.at("x").as_array();
  const auto& ys = v.at("y").as_array();
  if (xs.size() != ys.size()) {
    throw std::runtime_error("positions x/y arrays of unequal length");
  }
  std::vector<Vec2> pts;
  pts.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pts.push_back({xs[i].as_number(), ys[i].as_number()});
  }
  return pts;
}

PlannerOptions options_from_json(const json::Value& v) {
  PlannerOptions opt;
  if (v.has("objective")) {
    const std::string& m = v.at("objective").as_string();
    if (m == "a") {
      opt.objective = MarchObjective::kMaxStableLinks;
    } else if (m == "b") {
      opt.objective = MarchObjective::kMinDistance;
    } else {
      throw std::runtime_error("objective must be \"a\" or \"b\"");
    }
  }
  if (v.has("grid_points")) {
    opt.mesher.target_grid_points =
        static_cast<int>(v.at("grid_points").as_number());
  }
  if (v.has("cvt_samples")) {
    opt.cvt_samples = static_cast<int>(v.at("cvt_samples").as_number());
  }
  if (v.has("max_adjust_steps")) {
    opt.max_adjust_steps =
        static_cast<int>(v.at("max_adjust_steps").as_number());
  }
  if (v.has("safe_adjustment")) {
    opt.safe_adjustment = v.at("safe_adjustment").as_bool();
  }
  if (v.has("distributed")) opt.distributed = v.at("distributed").as_bool();
  if (v.has("exhaustive_rotation")) {
    opt.exhaustive_rotation = v.at("exhaustive_rotation").as_bool();
  }
  if (v.has("transition_time")) {
    opt.transition_time = v.at("transition_time").as_number();
  }
  if (v.has("rotation_partitions")) {
    opt.rotation.initial_partitions =
        static_cast<int>(v.at("rotation_partitions").as_number());
  }
  if (v.has("rotation_depth")) {
    opt.rotation.depth = static_cast<int>(v.at("rotation_depth").as_number());
  }
  if (v.has("extraction")) {
    const std::string& e = v.at("extraction").as_string();
    if (e == "auto") {
      opt.extraction = ExtractionMode::kAuto;
    } else if (e == "gabriel") {
      opt.extraction = ExtractionMode::kGabriel;
    } else {
      throw std::runtime_error("extraction must be \"auto\" or \"gabriel\"");
    }
  }
  if (v.has("adjustment")) {
    const std::string& a = v.at("adjustment").as_string();
    if (a == "grid") {
      opt.adjustment = AdjustmentEngine::kGridCvt;
    } else if (a == "local") {
      opt.adjustment = AdjustmentEngine::kLocalVoronoi;
    } else {
      throw std::runtime_error("adjustment must be \"grid\" or \"local\"");
    }
  }
  return opt;
}

}  // namespace

json::Value foi_to_json(const FieldOfInterest& foi) {
  json::Object o;
  o.emplace("outer", polygon_to_json(foi.outer()));
  if (foi.has_holes()) {
    json::Array holes;
    holes.reserve(foi.holes().size());
    for (const Polygon& h : foi.holes()) holes.push_back(polygon_to_json(h));
    o.emplace("holes", std::move(holes));
  }
  return json::Value(std::move(o));
}

FieldOfInterest foi_from_json(const json::Value& v) {
  Polygon outer = polygon_from_json(v.at("outer"));
  std::vector<Polygon> holes;
  if (v.has("holes")) {
    for (const json::Value& h : v.at("holes").as_array()) {
      holes.push_back(polygon_from_json(h));
    }
  }
  return FieldOfInterest(std::move(outer), std::move(holes));
}

JobRequest job_from_json(
    const json::Value& v,
    std::map<std::string, std::vector<Vec2>>* deployment_cache) {
  JobRequest req;
  runtime::PlanJob& job = req.job;
  if (v.has("id")) job.id = v.at("id").as_string();
  req.include_plan = v.has("include_plan") && v.at("include_plan").as_bool();
  if (v.has("plan_encoding")) {
    const std::string& enc = v.at("plan_encoding").as_string();
    if (enc == "binary") {
      req.binary_plan = true;
    } else if (enc != "json") {
      throw std::runtime_error("plan_encoding must be \"json\" or \"binary\"");
    }
  }

  int robots = 144;
  std::uint64_t seed = 1;
  std::string geometry_key;
  if (v.has("scenario")) {
    int id = static_cast<int>(v.at("scenario").as_number());
    Scenario sc = scenario(id);
    job.m1 = sc.m1;
    job.m2_shape = sc.m2_shape;
    job.r_c = sc.comm_range;
    robots = sc.num_robots;
    geometry_key = "scenario:" + std::to_string(id);
  }
  if (v.has("m1")) {
    job.m1 = foi_from_json(v.at("m1"));
    geometry_key.clear();
  }
  if (v.has("m2")) job.m2_shape = foi_from_json(v.at("m2"));
  if (job.m1.outer().size() == 0 || job.m2_shape.outer().size() == 0) {
    throw std::runtime_error(
        "request needs geometry: a \"scenario\" id or explicit m1/m2");
  }
  if (v.has("r_c")) job.r_c = v.at("r_c").as_number();
  if (v.has("robots")) robots = static_cast<int>(v.at("robots").as_number());
  if (v.has("seed")) {
    seed = static_cast<std::uint64_t>(v.at("seed").as_number());
  }

  if (v.has("deadline")) {
    job.deadline_seconds = v.at("deadline").as_number();
  }

  if (v.has("offset")) {
    job.m2_offset = {v.at("offset").at("x").as_number(),
                     v.at("offset").at("y").as_number()};
  } else {
    double sep = v.has("separation") ? v.at("separation").as_number() : 20.0;
    job.m2_offset = job.m1.centroid() + Vec2{sep * job.r_c, 0.0} -
                    job.m2_shape.centroid();
  }

  if (v.has("options")) job.options = options_from_json(v.at("options"));

  if (v.has("positions")) {
    job.positions = points_from_json(v.at("positions"));
  } else {
    // Generate the paper's optimal-coverage deployment. Memoized: batches
    // repeating a scenario pay the Lloyd convergence once.
    std::string key = (geometry_key.empty()
                           ? "m1:" + foi_to_json(job.m1).dump()
                           : geometry_key) +
                      "/n=" + std::to_string(robots) +
                      "/seed=" + std::to_string(seed);
    if (deployment_cache != nullptr) {
      auto it = deployment_cache->find(key);
      if (it != deployment_cache->end()) {
        job.positions = it->second;
        return req;
      }
    }
    job.positions = optimal_coverage_positions(job.m1, robots, seed,
                                               uniform_density())
                        .positions;
    if (deployment_cache != nullptr) {
      deployment_cache->emplace(std::move(key), job.positions);
    }
  }
  return req;
}

json::Value result_to_json(const runtime::JobResult& result,
                           bool include_plan) {
  json::Object o;
  o.emplace("id", result.id);
  o.emplace("ok", result.ok);
  o.emplace("status", runtime::job_status_name(result.status));
  if (!result.ok) {
    o.emplace("error", result.error);
    return json::Value(std::move(o));
  }
  o.emplace("degraded", result.degradation.degraded);
  if (result.degradation.degraded) {
    o.emplace("plan_mode", plan_mode_name(result.degradation.mode));
  }
  o.emplace("cache_hit", result.cache_hit);
  o.emplace("queue_seconds", result.queue_seconds);
  o.emplace("build_seconds", result.build_seconds);
  o.emplace("plan_seconds", result.plan_seconds);
  const MarchPlan& plan = result.plan;
  o.emplace("robots", plan.start.size());
  o.emplace("rotation_angle", plan.rotation_angle);
  o.emplace("predicted_link_ratio", plan.predicted_link_ratio);
  o.emplace("snapped_targets", plan.snapped_targets);
  o.emplace("repaired_robots", plan.repaired_robots);
  o.emplace("repaired_subgroups", plan.repaired_subgroups);
  o.emplace("max_boundary_gap", plan.max_boundary_gap);
  o.emplace("total_time", plan.total_time);
  o.emplace("adjust_steps", plan.adjust_steps);
  if (include_plan) o.emplace("plan", plan_to_json(plan));
  return json::Value(std::move(o));
}

}  // namespace anr
