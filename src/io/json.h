// Minimal JSON value, parser, and writer.
//
// libanr persists plans, trajectories, and metrics as JSON so runs can be
// archived, replayed, and diffed (src/io/plan_io). No third-party JSON
// dependency: this is a small, strict (RFC-8259-subset) recursive-descent
// implementation — no comments, no trailing commas, numbers as double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace anr::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number (double), string, array, or object.
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(std::size_t u) : v_(static_cast<double>(u)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field access; throws when absent or not an object.
  const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool has(const std::string& key) const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Thrown by parse() with a byte offset and reason.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parses a complete JSON document (trailing whitespace allowed).
Value parse(const std::string& text);

}  // namespace anr::json
