#include "march/resilience.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "net/connectivity.h"

namespace anr {

FailureRecovery recover_from_failure(const std::vector<Trajectory>& planned,
                                     double t_fail,
                                     const std::vector<int>& failed,
                                     const FieldOfInterest& m2_world,
                                     double r_c, const DensityFn& density,
                                     int max_lloyd_steps, int cvt_samples) {
  ANR_CHECK(!planned.empty());
  for (int f : failed) {
    ANR_CHECK_MSG(f >= 0 && f < static_cast<int>(planned.size()),
                  "failed index out of range");
  }
  std::set<int> dead(failed.begin(), failed.end());
  ANR_CHECK_MSG(dead.size() < planned.size(), "all robots failed");

  FailureRecovery out;
  double plan_end = 0.0;
  for (std::size_t i = 0; i < planned.size(); ++i) {
    plan_end = std::max(plan_end, planned[i].end_time());
    if (!dead.count(static_cast<int>(i))) {
      out.survivors.push_back(static_cast<int>(i));
      out.trajectories.push_back(planned[i]);
    }
  }
  (void)t_fail;  // survivors keep flying their plan; recovery starts after
  out.recovery_start = plan_end;

  // Re-spread: connectivity-safe Lloyd over the target FoI among the
  // survivors only (the dead robots' Voronoi regions get absorbed).
  GridCvt grid(m2_world, density ? density : uniform_density(), cvt_samples);
  std::vector<Vec2> cur;
  cur.reserve(out.trajectories.size());
  for (const Trajectory& t : out.trajectories) cur.push_back(t.end());

  // Reference speed comparable to the original march.
  double speed_ref = 1e-9;
  for (const Trajectory& t : out.trajectories) {
    double dur = std::max(t.end_time() - t.start_time(), 1e-9);
    speed_ref = std::max(speed_ref, t.length() / dur);
  }

  double t = plan_end;
  for (int step = 0; step < max_lloyd_steps; ++step) {
    std::vector<Vec2> cand = grid.centroids(cur);
    double factor = 1.0;
    std::vector<Vec2> trial(cur.size());
    bool ok = false;
    for (int halving = 0; halving < 7; ++halving) {
      for (std::size_t i = 0; i < cur.size(); ++i) {
        trial[i] = lerp(cur[i], cand[i], factor);
      }
      if (net::is_connected(trial, r_c)) {
        ok = true;
        break;
      }
      factor /= 2.0;
    }
    if (!ok) break;
    double max_move = 0.0;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      max_move = std::max(max_move, distance(trial[i], cur[i]));
    }
    ++out.lloyd_steps;
    if (max_move <= 0.5) {
      double dtf = std::max(max_move / speed_ref, 1e-6);
      for (std::size_t i = 0; i < cur.size(); ++i) {
        out.recovery_distance += distance(cur[i], trial[i]);
        out.trajectories[i].append(trial[i], t + dtf);
      }
      cur = trial;
      break;
    }
    double dt = std::max(max_move / speed_ref, 1e-6);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      out.recovery_distance += distance(cur[i], trial[i]);
      out.trajectories[i].append(trial[i], t + dt);
    }
    cur = trial;
    t += dt;
  }
  out.final_positions = cur;
  return out;
}

RetargetResult retarget_mid_march(const std::vector<Trajectory>& current,
                                  double t_event,
                                  const MarchPlanner& new_planner,
                                  Vec2 new_offset) {
  ANR_CHECK(!current.empty());
  ANR_CHECK_MSG(t_event >= 0.0, "retarget time must be non-negative");
  RetargetResult out;
  out.event_time = t_event;
  out.positions_at_event.reserve(current.size());
  for (const Trajectory& t : current) {
    out.positions_at_event.push_back(t.position(t_event));
  }

  // The in-progress march maintained C = 1, so this deployment is a valid
  // (connected) starting configuration for a fresh plan.
  out.second_leg = new_planner.plan(out.positions_at_event, new_offset);

  out.trajectories.reserve(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    Trajectory spliced = current[i].truncated_at(t_event);
    // Shift the second leg to begin at the event time.
    const Trajectory& leg = out.second_leg.trajectories[i];
    Trajectory shifted;
    for (std::size_t w = 0; w < leg.num_waypoints(); ++w) {
      shifted.append(leg.waypoints()[w], leg.times()[w] + t_event);
    }
    spliced.extend(shifted);
    out.trajectories.push_back(std::move(spliced));
  }
  return out;
}

}  // namespace anr
