#include "march/distributed_rotation.h"

#include <cmath>

#include "common/check.h"
#include "net/network.h"
#include "net/protocols/flood.h"
#include "net/unit_disk_graph.h"

namespace anr {

namespace {
constexpr int kMappedPos = 11;  // reals = {x, y}
}

DistributedRotationResult distributed_rotation_search(
    const std::function<std::vector<Vec2>(double)>& map_targets,
    const std::vector<Vec2>& positions, double r_c, MarchObjective objective,
    const RotationSearchOptions& opt) {
  ANR_CHECK(opt.initial_partitions >= 1 && opt.depth >= 0);
  const std::size_t n = positions.size();
  auto adj = net::unit_disk_adjacency(positions, r_c);

  DistributedRotationResult out;
  double r2 = r_c * r_c;

  // One probe: local mapping, 1-hop exchange, flood-sum of local counts.
  auto probe = [&](double theta) {
    std::vector<Vec2> q = map_targets(theta);
    ANR_CHECK(q.size() == n);

    net::Network net(adj);
    for (std::size_t i = 0; i < n; ++i) {
      net::Message m;
      m.tag = kMappedPos;
      m.reals = {q[i].x, q[i].y};
      net.broadcast(static_cast<int>(i), m);
    }
    net.deliver_round();
    std::vector<double> local(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (objective == MarchObjective::kMinDistance) {
        net.take_inbox(static_cast<int>(i));  // drain (unused for method b)
        local[i] = -distance(positions[i], q[i]);
        continue;
      }
      for (const net::Message& m : net.take_inbox(static_cast<int>(i))) {
        if (m.tag != kMappedPos) continue;
        Vec2 qj{m.reals[0], m.reals[1]};
        if (distance2(q[i], qj) <= r2 + 1e-9) local[i] += 0.5;  // each link
                                                                // counted twice
      }
    }
    out.messages += net.messages_sent();
    out.rounds += net.rounds_elapsed();

    net::Network flood_net(adj);
    auto sum = net::run_flood_sum(flood_net, local);
    out.messages += sum.messages;
    out.rounds += sum.rounds;
    ++out.evaluations;

    // Method (a): maximize preserved links (the denominator, total initial
    // links, is constant across probes — ratio ordering is unchanged).
    return sum.sum;
  };

  out.value = -1e300;
  auto consider = [&](double theta, double v) {
    if (v > out.value) {
      out.value = v;
      out.angle = theta;
    }
  };

  double seg = 2.0 * M_PI / opt.initial_partitions;
  double lo = 0.0, hi = seg;
  double best_seg = -1e300;
  for (int i = 0; i < opt.initial_partitions; ++i) {
    double a = i * seg, b = (i + 1) * seg;
    double mid = (a + b) / 2.0;
    double v = probe(mid);
    consider(mid, v);
    if (v > best_seg) {
      best_seg = v;
      lo = a;
      hi = b;
    }
  }
  for (int d = 0; d < opt.depth; ++d) {
    double mid = (lo + hi) / 2.0;
    double lmid = (lo + mid) / 2.0;
    double rmid = (mid + hi) / 2.0;
    double vl = probe(lmid);
    consider(lmid, vl);
    double vr = probe(rmid);
    consider(rmid, vr);
    if (vl >= vr) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return out;
}

}  // namespace anr
