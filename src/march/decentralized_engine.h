// DecentralizedEngine: executes a march with NO global oracle in the
// control path.
//
// The centralized ExecutionEngine detects crashes and watches
// connectivity through omniscient observers (the FaultModel, the
// ConnectivityMonitor). This engine replaces all of that with per-robot
// LocalControllers exchanging real messages over a hostile net::Network:
// seeded per-link delays and message loss, ack/retransmit reliability
// for the control plane, and scripted partition/heal windows injected as
// link outages through net::make_fault_outage. The engine's own jobs are
// reduced to physics and bookkeeping:
//
//   - plant: apply actuation faults (crash-stop, stuck, slowdown) to the
//     progress each controller *wants*, move robots along their
//     timelines, and feed noisy GPS back;
//   - radio truth: rebuild the unit-disk topology every tick from the
//     noisy positions at the degraded range, so links really break as
//     robots drift apart;
//   - observation: sample global connectivity C and tally message/
//     detection/recovery metrics for the report — reporting only, never
//     control decisions.
//
// Determinism: a run is a pure function of (plan, schedule, options).
// Controllers step in robot-id order, every randomness source is a
// seeded hash, and the event log serializes byte-identically for a given
// seed tuple. Under zero loss and zero faults the march lands on exactly
// the centralized plan's final configuration (tests/test_decentralized).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coverage/density.h"
#include "fault/fault_model.h"
#include "foi/foi.h"
#include "march/execution_engine.h"
#include "march/planner.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace anr {

struct DecentralizedOptions {
  /// Tick length; 0 picks plan.total_time / 512 (matches ExecutionEngine).
  double dt = 0.0;

  // --- channel hostility ------------------------------------------------
  /// Per-message delivery delay of 1..max_delay rounds (1 = synchronous).
  int max_delay = 1;
  std::uint64_t delay_seed = 0x5eedULL;
  /// Per-transmission loss probability (0 = lossless).
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 0x10551ULL;
  /// Ack/retransmit knobs for the reliable control plane.
  net::ReliabilityOptions reliability{};

  // --- local-controller tuning (see LocalControllerConfig) --------------
  int heartbeat_period = 1;
  int suspicion_ticks = 12;
  int suspicion_jitter = 4;
  int confirm_ticks = 8;
  int election_ticks = 12;
  int gather_ticks = 12;
  int isolation_ticks = 18;
  /// 0 picks (max_delay + 3) * dt — the smallest slack that keeps
  /// heartbeat staleness from throttling a healthy march.
  double lag_tolerance = 0.0;
  double catch_up_factor = 3.0;
  double suspicion_range_factor = 0.8;
  std::uint64_t timeout_seed = 0x7ea5ULL;

  // --- recovery ---------------------------------------------------------
  bool enable_recovery = true;
  int recovery_lloyd_steps = 40;
  int recovery_cvt_samples = 8000;

  std::uint64_t noise_seed = 0x5eedULL;
  /// Wall cap as a multiple of the plan horizon.
  double max_wall_factor = 25.0;
  /// Metrics sink (anr_dex_* families), batched post-run. May be null.
  obs::Registry* registry = nullptr;
};

/// Lifecycle of one true crash as the swarm experienced it. Times < 0
/// mean the stage never happened (e.g. a crash nobody detected).
struct CrashDetection {
  int robot = -1;
  int coordinator = -1;       ///< absorb coordinator (-1 when none elected)
  double crash_time = 0.0;
  double suspected_time = -1.0;
  double detected_time = -1.0;  ///< first confirm by any peer
  double recovered_time = -1.0; ///< absorb computed and flooded
};

struct DecentralizedReport {
  /// The common execution summary (events, survivors, connectivity,
  /// distances, final configuration). `recoveries` counts absorbs.
  ExecutionReport exec;

  // --- message complexity ----------------------------------------------
  std::size_t rounds = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_lost = 0;
  std::size_t retransmissions = 0;
  std::size_t messages_expired = 0;
  std::size_t duplicates_suppressed = 0;
  std::size_t acks_sent = 0;
  std::size_t bytes_sent = 0;
  std::size_t heartbeats = 0;

  // --- distributed-detection accounting --------------------------------
  int suspicions = 0;   ///< suspicion episodes raised across all robots
  int isolations = 0;   ///< robots that went totally silent-side
  int elections = 0;    ///< coordinator elections won
  int absorbs = 0;      ///< peer-absorb recoveries completed
  std::vector<CrashDetection> detections;  ///< true crashes, crash order
  /// Mean crash->confirm and confirm->absorb latencies over the true
  /// crashes that reached those stages; -1 when none did.
  double mean_detection_latency = -1.0;
  double mean_recovery_latency = -1.0;
};

/// Executes plans through message-passing local controllers. Stateless
/// across runs.
class DecentralizedEngine {
 public:
  explicit DecentralizedEngine(double r_c, DecentralizedOptions options = {});

  /// Runs `plan` under `schedule` with per-robot local control. Throws
  /// ContractViolation on an invalid schedule or empty plan.
  DecentralizedReport run(const MarchPlan& plan,
                          const fault::FaultSchedule& schedule,
                          const FieldOfInterest& m2_world,
                          const DensityFn& density = {}) const;

  double comm_range() const { return r_c_; }
  const DecentralizedOptions& options() const { return opt_; }

 private:
  struct Instruments {
    obs::Counter* runs = nullptr;
    obs::Counter* rounds = nullptr;
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* lost = nullptr;
    obs::Counter* retransmissions = nullptr;
    obs::Counter* heartbeats = nullptr;
    obs::Counter* suspicions = nullptr;
    obs::Counter* isolations = nullptr;
    obs::Counter* elections = nullptr;
    obs::Counter* absorbs = nullptr;
    obs::Histogram* detection_latency = nullptr;
    obs::Histogram* recovery_latency = nullptr;
  };

  double r_c_;
  DecentralizedOptions opt_;
  Instruments ins_;
};

}  // namespace anr
