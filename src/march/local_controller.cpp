#include "march/local_controller.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "march/resilience.h"

namespace anr {

namespace {

/// Appends (t, x, y) triples for every waypoint of `traj`.
void encode_trajectory(const Trajectory& traj, std::vector<double>& out) {
  const auto& pts = traj.waypoints();
  const auto& ts = traj.times();
  out.reserve(out.size() + 3 * pts.size());
  for (std::size_t k = 0; k < pts.size(); ++k) {
    out.push_back(ts[k]);
    out.push_back(pts[k].x);
    out.push_back(pts[k].y);
  }
}

/// Reads (t, x, y) triples from reals[offset..] back into a Trajectory.
Trajectory decode_trajectory(const std::vector<double>& reals,
                             std::size_t offset) {
  Trajectory traj;
  for (std::size_t k = offset; k + 3 <= reals.size(); k += 3) {
    traj.append(Vec2{reals[k + 1], reals[k + 2]}, reals[k]);
  }
  return traj;
}

}  // namespace

LocalController::LocalController(LocalControllerConfig cfg, Trajectory traj)
    : cfg_(std::move(cfg)), traj_(std::move(traj)) {
  ANR_CHECK(cfg_.id >= 0 && cfg_.id < cfg_.num_robots);
  ANR_CHECK(cfg_.r_c > 0.0);
  ANR_CHECK(cfg_.dt > 0.0);
  ANR_CHECK(cfg_.heartbeat_period >= 1);
  ANR_CHECK(cfg_.suspicion_ticks > cfg_.heartbeat_period);
  ANR_CHECK(cfg_.lag_tolerance > 0.0);
  ANR_CHECK(!traj_.empty());
  progress_ = traj_.start_time();
  gps_ = traj_.position(progress_);
  peers_.resize(static_cast<std::size_t>(cfg_.num_robots));
}

std::int64_t LocalController::suspicion_budget(int peer) const {
  if (cfg_.suspicion_jitter <= 0) return cfg_.suspicion_ticks;
  const std::uint64_t h = splitmix64(
      cfg_.timeout_seed ^
      (static_cast<std::uint64_t>(cfg_.id) * 0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(peer) + 0xda942042e4dd58b5ULL));
  return cfg_.suspicion_ticks +
         static_cast<std::int64_t>(
             h % static_cast<std::uint64_t>(cfg_.suspicion_jitter));
}

void LocalController::flood(net::Network& net, const net::Message& m) {
  net::Message copy = m;
  copy.src = cfg_.id;  // hop source; the origin rides in the payload
  net.broadcast_reliable(cfg_.id, copy);
}

void LocalController::note_claim(int suspect, int candidate, double score,
                                 Vec2 last_pos, std::int64_t tick) {
  Election& el = elections_[suspect];
  if (el.claim_tick < 0) el.claim_tick = tick;
  if (el.best_candidate < 0) el.last_pos = last_pos;
  // Exact comparisons: the score bits travel in the message, so every
  // node ranks the same claims identically.
  if (el.best_candidate < 0 || score < el.best_score ||
      (score == el.best_score && candidate < el.best_candidate)) {
    el.best_score = score;
    el.best_candidate = candidate;
  }
}

void LocalController::handle_message(std::int64_t tick, const net::Message& m,
                                     net::Network& net,
                                     std::vector<LocalEvent>& events) {
  switch (m.tag) {
    case dex_tag::kHeartbeat: {
      const int j = m.src;
      if (j < 0 || j >= cfg_.num_robots || j == cfg_.id) break;
      Peer& pr = peers_[static_cast<std::size_t>(j)];
      const bool was_dead = pr.confirmed || pr.absorbed;
      if (pr.suspected) {
        pr.suspected = false;
        pr.suspect_since = -1;
        events.push_back({LocalEventKind::kSuspicionCleared, j,
                          "heard by robot " + std::to_string(cfg_.id)});
      }
      if (was_dead) {
        // A confirm that a partition outlived: the peer is alive after
        // all. Readmit it to the live set (honest degradation — an
        // absorb may already have reassigned its region).
        pr.confirmed = false;
        pr.absorbed = false;
        events.push_back({LocalEventKind::kSuspicionCleared, j,
                          "false confirm; readmitted by robot " +
                              std::to_string(cfg_.id)});
      }
      pr.known = true;
      pr.last_heard = tick;
      pr.pos = Vec2{m.reals[0], m.reals[1]};
      pr.my_pos_then = gps_;
      pr.progress = m.reals[2];
      break;
    }
    case dex_tag::kSuspect: {
      const int suspect = m.ints[0];
      const int suspecter = m.ints[1];
      if (!seen_suspect_.insert({suspect, suspecter}).second) break;
      suspecters_[suspect].insert(suspecter);
      Election& el = elections_[suspect];
      if (el.best_candidate < 0 && el.claim_tick < 0) {
        const Peer& pr = peers_[static_cast<std::size_t>(suspect)];
        el.last_pos = pr.known ? pr.pos : Vec2{m.reals[0], m.reals[1]};
      }
      flood(net, m);
      break;
    }
    case dex_tag::kClaim: {
      const int suspect = m.ints[0];
      const int candidate = m.ints[1];
      Election& el = elections_[suspect];
      if (el.done) break;
      const int prev_best = el.best_candidate;
      const double prev_score = el.best_score;
      note_claim(suspect, candidate, m.reals[0], el.last_pos, tick);
      // Chang–Roberts: only improving claims survive the relay.
      if (el.best_candidate != prev_best || el.best_score != prev_score ||
          prev_best < 0) {
        flood(net, m);
      }
      break;
    }
    case dex_tag::kStateReq: {
      const int suspect = m.ints[0];
      const int coordinator = m.ints[1];
      if (!seen_state_req_.insert({suspect, coordinator}).second) break;
      flood(net, m);
      if (coordinator != cfg_.id &&
          seen_state_.insert({cfg_.id, suspect}).second) {
        net::Message s;
        s.src = cfg_.id;
        s.tag = dex_tag::kState;
        s.ints = {cfg_.id, suspect};
        s.reals = {progress_};
        encode_trajectory(traj_, s.reals);
        flood(net, s);
      }
      break;
    }
    case dex_tag::kState: {
      const int owner = m.ints[0];
      const int suspect = m.ints[1];
      if (!seen_state_.insert({owner, suspect}).second) break;
      flood(net, m);
      Election& el = elections_[suspect];
      if (!el.done && owner != suspect) {
        el.states[owner] = {m.reals[0], decode_trajectory(m.reals, 1)};
      }
      break;
    }
    case dex_tag::kNewTraj: {
      const int target = m.ints[0];
      const int suspect = m.ints[1];
      if (!seen_new_traj_.insert({target, suspect}).second) break;
      flood(net, m);
      Election& el = elections_[suspect];
      el.done = true;
      el.gathering = false;
      peers_[static_cast<std::size_t>(suspect)].absorbed = true;
      if (target == cfg_.id && spliced_for_.insert(suspect).second) {
        Trajectory next = decode_trajectory(m.reals, 0);
        if (!next.empty() && next.end_time() >= progress_) {
          traj_ = std::move(next);
          events.push_back({LocalEventKind::kSpliced, suspect,
                            "robot " + std::to_string(cfg_.id) +
                                " spliced recovery timeline"});
        }
      }
      break;
    }
    case dex_tag::kAbsorbDone: {
      const int suspect = m.ints[0];
      if (!seen_absorb_done_.insert(suspect).second) break;
      flood(net, m);
      Election& el = elections_[suspect];
      el.done = true;
      el.gathering = false;
      peers_[static_cast<std::size_t>(suspect)].absorbed = true;
      break;
    }
    default:
      break;
  }
}

void LocalController::run_absorb(std::int64_t tick, int suspect, Election& el,
                                 net::Network& net,
                                 std::vector<LocalEvent>& events) {
  el.gathering = false;
  el.done = true;
  peers_[static_cast<std::size_t>(suspect)].absorbed = true;
  ANR_CHECK(cfg_.m2_world != nullptr);

  // Assemble the recovery input: gathered survivor timelines in id order,
  // plus a placeholder for the suspect — recover_from_failure never reads
  // a failed robot's trajectory, only its index.
  std::vector<int> ids;
  std::vector<Trajectory> planned;
  ids.reserve(el.states.size() + 1);
  planned.reserve(el.states.size() + 1);
  for (const auto& [rid, st] : el.states) {
    ids.push_back(rid);
    planned.push_back(st.second);
  }
  Trajectory ghost;
  ghost.append(el.last_pos, 0.0);
  ids.push_back(suspect);
  planned.push_back(ghost);
  const int failed_index = static_cast<int>(planned.size()) - 1;
  const double t_fail = static_cast<double>(tick) * cfg_.dt;

  try {
    const DensityFn empty{};
    const DensityFn& density =
        cfg_.density != nullptr ? *cfg_.density : empty;
    const FailureRecovery rec = recover_from_failure(
        planned, t_fail, {failed_index}, *cfg_.m2_world, cfg_.r_c, density,
        cfg_.recovery_lloyd_steps, cfg_.recovery_cvt_samples);
    for (std::size_t k = 0; k < rec.survivors.size(); ++k) {
      const int rid = ids[static_cast<std::size_t>(rec.survivors[k])];
      const Trajectory& next = rec.trajectories[k];
      if (rid == cfg_.id) {
        if (spliced_for_.insert(suspect).second) traj_ = next;
      } else {
        net::Message nt;
        nt.src = cfg_.id;
        nt.tag = dex_tag::kNewTraj;
        nt.ints = {rid, suspect, cfg_.id};
        encode_trajectory(next, nt.reals);
        seen_new_traj_.insert({rid, suspect});
        flood(net, nt);
      }
    }
    net::Message done_msg;
    done_msg.src = cfg_.id;
    done_msg.tag = dex_tag::kAbsorbDone;
    done_msg.ints = {suspect, cfg_.id};
    seen_absorb_done_.insert(suspect);
    flood(net, done_msg);
    ++absorbs_completed_;
    events.push_back(
        {LocalEventKind::kAbsorbDone, suspect,
         "coordinator " + std::to_string(cfg_.id) + " absorbed robot " +
             std::to_string(suspect) + ": " +
             std::to_string(rec.survivors.size()) + " survivor states, " +
             std::to_string(rec.lloyd_steps) + " respread steps"});
  } catch (const std::exception& e) {
    events.push_back({LocalEventKind::kAbsorbFailed, suspect, e.what()});
  }
}

LocalController::StepResult LocalController::step(
    std::int64_t tick, std::vector<net::Message> inbox, net::Network& net) {
  StepResult out;

  // 1. Inbox: any contact ends isolation and refreshes the silence clock.
  if (!inbox.empty()) {
    if (isolated_) {
      isolated_ = false;
      out.events.push_back({LocalEventKind::kRejoinedSelf, -1,
                            "robot " + std::to_string(cfg_.id) +
                                " regained contact"});
    }
    last_any_heard_ = tick;
    had_contact_ = true;
  }
  for (const net::Message& m : inbox) {
    handle_message(tick, m, net, out.events);
  }

  // 2. Suspicion: silent, recently-nearby peers burn their budget; a
  //    suspicion that survives the confirm window becomes a death verdict
  //    and (when recovery is on) a claim in the coordinator election.
  for (int j = 0; j < cfg_.num_robots; ++j) {
    if (j == cfg_.id) continue;
    Peer& pr = peers_[static_cast<std::size_t>(j)];
    if (!pr.known || pr.absorbed || pr.confirmed) continue;
    if (!pr.suspected) {
      // The range gate is evaluated at last-heartbeat time: a peer that
      // was already near the range edge when it went silent is link
      // churn (legit drift-out), not a crash candidate.
      if (!isolated_ && tick - pr.last_heard > suspicion_budget(j) &&
          distance(pr.my_pos_then, pr.pos) <=
              cfg_.suspicion_range_factor * cfg_.r_c) {
        pr.suspected = true;
        pr.suspect_since = tick;
        ++suspicions_raised_;
        out.events.push_back({LocalEventKind::kSuspected, j,
                              "by robot " + std::to_string(cfg_.id)});
        net::Message s;
        s.src = cfg_.id;
        s.tag = dex_tag::kSuspect;
        s.ints = {j, cfg_.id};
        s.reals = {pr.pos.x, pr.pos.y};
        seen_suspect_.insert({j, cfg_.id});
        suspecters_[j].insert(cfg_.id);
        Election& el = elections_[j];
        if (el.best_candidate < 0 && el.claim_tick < 0) el.last_pos = pr.pos;
        flood(net, s);
      }
    } else if (tick - pr.suspect_since >= cfg_.confirm_ticks &&
               suspecters_[j].size() >= 2) {
      pr.confirmed = true;
      out.events.push_back({LocalEventKind::kConfirmed, j,
                            "by robot " + std::to_string(cfg_.id)});
      if (cfg_.enable_recovery) {
        Election& el = elections_[j];
        if (!el.done && !el.participating) {
          el.participating = true;
          el.last_pos = pr.pos;
          el.my_score = distance(gps_, pr.pos);
          note_claim(j, cfg_.id, el.my_score, pr.pos, tick);
          net::Message c;
          c.src = cfg_.id;
          c.tag = dex_tag::kClaim;
          c.ints = {j, cfg_.id};
          c.reals = {el.my_score};
          flood(net, c);
        }
      }
    }
  }

  // 3. Elections: participants decide after the claim-settling window;
  //    the unbeaten claimant coordinates (state gather, then absorb).
  for (auto& [suspect, el] : elections_) {
    if (el.done) continue;
    if (el.participating && !el.decided &&
        tick - el.claim_tick >= cfg_.election_ticks) {
      el.decided = true;
      if (el.best_candidate == cfg_.id) {
        ++elections_won_;
        el.gathering = true;
        el.gather_start = tick;
        el.states[cfg_.id] = {progress_, traj_};
        out.events.push_back(
            {LocalEventKind::kElected, suspect,
             "robot " + std::to_string(cfg_.id) +
                 " closest to last known position (score " +
                 std::to_string(el.my_score) + ")"});
        net::Message req;
        req.src = cfg_.id;
        req.tag = dex_tag::kStateReq;
        req.ints = {suspect, cfg_.id};
        seen_state_req_.insert({suspect, cfg_.id});
        flood(net, req);
      }
    }
    if (el.gathering && tick - el.gather_start >= cfg_.gather_ticks) {
      run_absorb(tick, suspect, el, net, out.events);
    }
  }

  // 4. Isolation: total silence past the budget flags the robot as cut
  //    off (the paper's "isolated ANR may be excluded... and become
  //    permanently lost"). The flag is observational — motion continues
  //    along the planned timeline (see section 6), which is what brings
  //    the robot back into radio range of the swarm.
  if (!isolated_ && had_contact_ &&
      tick - last_any_heard_ > cfg_.isolation_ticks) {
    isolated_ = true;
    out.events.push_back({LocalEventKind::kIsolatedSelf, -1,
                          "robot " + std::to_string(cfg_.id) +
                              " heard nobody for " +
                              std::to_string(cfg_.isolation_ticks) +
                              " ticks; marching on alone"});
  }

  // 5. Heartbeat (unreliable — the steady state costs no acks).
  if (tick % cfg_.heartbeat_period == 0) {
    net::Message hb;
    hb.src = cfg_.id;
    hb.tag = dex_tag::kHeartbeat;
    hb.reals = {gps_.x, gps_.y, progress_};
    net.broadcast(cfg_.id, hb);
    ++heartbeats_sent_;
  }

  // 6. Motion intent: advance along the own timeline, throttled to the
  //    slowest tracked live neighbor plus the lag tolerance (the
  //    decentralized pause-and-wait), sprinting when behind the fastest.
  //    An isolated robot marches on at nominal pace — the planned
  //    timeline is the swarm's shared rendezvous contract, and following
  //    it is the one local action guaranteed to re-converge after a
  //    transient split (parking would freeze the robot mid-plan while
  //    the rest march away: a deadlock).
  double desired = progress_;
  {
    double min_peer = std::numeric_limits<double>::infinity();
    double max_peer = -std::numeric_limits<double>::infinity();
    for (int j = 0; j < cfg_.num_robots; ++j) {
      if (j == cfg_.id) continue;
      const Peer& pr = peers_[static_cast<std::size_t>(j)];
      // "Tracked" = heard inside the base suspicion budget. A stale
      // entry is either drifting out of range or already suspected;
      // neither may throttle the march forever.
      if (!pr.known || pr.absorbed || pr.confirmed || pr.suspected) continue;
      if (tick - pr.last_heard > cfg_.suspicion_ticks) continue;
      // Dead-reckon the silent gap at nominal pace: a heartbeat heard at
      // tick h carries progress through tick h - 1 - delay, so credit the
      // peer one step per tick since. Silence is evidence of link churn,
      // not slowness — a genuinely slow robot keeps heartbeating its
      // frozen progress (the throttle binds on it below), and a crashed
      // one leaves the tracked set via suspicion. Without the credit, a
      // near-r_c link flapping out freezes the peer's progress in this
      // table and a phantom slowdown wave propagates through the swarm.
      const double est =
          pr.progress + static_cast<double>(tick - pr.last_heard + 1) * cfg_.dt;
      min_peer = std::min(min_peer, est);
      max_peer = std::max(max_peer, est);
    }
    double rate = 1.0;
    if (max_peer > progress_ + cfg_.lag_tolerance) rate = cfg_.catch_up_factor;
    desired = progress_ + rate * cfg_.dt;
    if (min_peer < std::numeric_limits<double>::infinity()) {
      desired = std::min(desired, min_peer + cfg_.lag_tolerance);
    }
    desired = std::max(desired, progress_);
  }
  out.desired_progress = desired;
  return out;
}

void LocalController::observe_self(double progress, Vec2 gps_position) {
  ANR_CHECK(progress >= progress_ - 1e-12);
  progress_ = progress;
  gps_ = gps_position;
}

bool LocalController::busy() const {
  for (const auto& [suspect, el] : elections_) {
    if (el.done) continue;
    if (el.participating && !el.decided) return true;
    if (el.gathering) return true;
  }
  return false;
}

}  // namespace anr
