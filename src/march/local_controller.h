// Per-robot local controller for the decentralized execution mode.
//
// Each robot runs one of these: it sees only its own trajectory, its own
// (GPS) position and progress, and whatever arrives in its net::Network
// inbox. Everything the centralized ExecutionEngine reads from global
// oracles is re-derived here from messages:
//
//   - liveness: every robot broadcasts a heartbeat (position + progress)
//     each tick; a peer table tracks who was heard when;
//   - local connectivity estimation: a robot that stops hearing anyone
//     declares itself isolated; it keeps following its planned timeline
//     (the plan is the swarm's rendezvous contract — marching it is the
//     one local action that re-converges after a transient split) and
//     reports the rejoin when contact returns;
//   - crash suspicion: a peer that was recently nearby (well inside the
//     radio range) and then falls silent past a seeded per-(i, j)
//     missed-heartbeat budget becomes suspected, then — after a confirm
//     window with no sign of life — confirmed dead. A heartbeat at any
//     point clears the suspicion (that is how partition heals stay
//     absorb-free);
//   - peer-absorb recovery: confirmed deaths trigger a
//     closest-live-neighbor election over the Chang–Roberts idiom of
//     protocols/boundary_walk — every suspecter floods a claim scored by
//     its distance to the suspect's last known position, claims survive
//     only toward better (smaller score, then smaller id) candidates,
//     and after a fixed window the unbeaten claimant coordinates: it
//     floods a state request, gathers survivor trajectories by message,
//     runs the same recover_from_failure the centralized engine uses,
//     and floods each survivor its spliced timeline;
//   - marching pace: a robot throttles to min(neighbor progress) + a lag
//     tolerance, the decentralized analog of pause-and-wait — a stuck
//     neighbor freezes its neighborhood, and the freeze propagates.
//
// Under zero loss and no faults none of this machinery changes motion:
// every robot advances dt per tick along its planned trajectory, so the
// decentralized march lands on exactly the centralized plan's final
// configuration (pinned by tests/test_decentralized.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "coverage/density.h"
#include "foi/foi.h"
#include "march/trajectory.h"
#include "net/network.h"

namespace anr {

/// Message tags of the decentralized control plane (heartbeats are
/// unreliable; everything else rides the ack/retransmit layer).
namespace dex_tag {
constexpr int kHeartbeat = 101;  ///< reals = {x, y, progress}
constexpr int kSuspect = 102;    ///< ints = {suspect, suspecter}, reals = last pos
constexpr int kClaim = 103;      ///< ints = {suspect, candidate}, reals = {score}
constexpr int kStateReq = 104;   ///< ints = {suspect, coordinator}
constexpr int kState = 105;      ///< ints = {owner, suspect}, reals = {progress, (t,x,y)*}
constexpr int kNewTraj = 106;    ///< ints = {target, suspect, coordinator}, reals = {(t,x,y)*}
constexpr int kAbsorbDone = 107; ///< ints = {suspect, coordinator}
}  // namespace dex_tag

struct LocalControllerConfig {
  int id = -1;
  int num_robots = 0;
  double r_c = 0.0;
  double dt = 0.0;
  int heartbeat_period = 1;   ///< ticks between heartbeats
  int suspicion_ticks = 12;   ///< base missed-heartbeat budget
  int suspicion_jitter = 4;   ///< + hash(seed, i, j) % jitter, de-synchronized
  int confirm_ticks = 8;      ///< suspicion -> confirmed crash
  int election_ticks = 12;    ///< claim-flood settling window
  int gather_ticks = 12;      ///< coordinator state-collection window
  int isolation_ticks = 18;   ///< total silence -> self-isolated
  /// Progress headroom (time units) granted over the slowest tracked
  /// neighbor before throttling. Must exceed (max_delay + 2) * dt or
  /// heartbeat staleness throttles a healthy march.
  double lag_tolerance = 0.0;
  double catch_up_factor = 3.0;
  /// A silent peer is only suspected dead when it was last seen within
  /// this fraction of r_c — silence from a peer near the range edge is
  /// link churn, not a crash.
  double suspicion_range_factor = 0.8;
  std::uint64_t timeout_seed = 0x7ea5ULL;
  bool enable_recovery = true;
  const FieldOfInterest* m2_world = nullptr;  ///< mission data (absorb re-spread)
  const DensityFn* density = nullptr;         ///< may be null (uniform)
  int recovery_lloyd_steps = 40;
  int recovery_cvt_samples = 8000;
};

/// What a controller observed or decided this tick; the engine turns
/// these into the deterministic ExecutionEvent log and latency records.
enum class LocalEventKind {
  kSuspected,         ///< subject peer passed its missed-heartbeat budget
  kSuspicionCleared,  ///< subject peer was heard again
  kConfirmed,         ///< subject peer confirmed dead (no life in confirm window)
  kElected,           ///< this robot won the coordinator election for subject
  kAbsorbDone,        ///< this robot computed + flooded the absorb for subject
  kAbsorbFailed,      ///< recover_from_failure threw (detail has the reason)
  kSpliced,           ///< this robot spliced a received recovery timeline
  kIsolatedSelf,      ///< total silence; marching on alone
  kRejoinedSelf,      ///< contact regained; resumed
};

struct LocalEvent {
  LocalEventKind kind;
  int subject = -1;    ///< peer the event is about (-1 for self events)
  std::string detail;  ///< deterministic description fragment
};

class LocalController {
 public:
  LocalController(LocalControllerConfig cfg, Trajectory traj);

  struct StepResult {
    /// Progress the robot intends to reach this tick (the plant — the
    /// engine's fault model — caps what is actually achieved).
    double desired_progress = 0.0;
    std::vector<LocalEvent> events;
  };

  /// One control tick: consume the inbox, update the peer table and the
  /// suspicion/election state machines, queue outgoing messages on
  /// `net`, and decide the motion intent. Deterministic given the inbox
  /// sequence and config seeds.
  StepResult step(std::int64_t tick, std::vector<net::Message> inbox,
                  net::Network& net);

  /// Plant feedback after the engine applied actuation faults: the
  /// progress actually reached and the (noisy) position the radio and
  /// GPS report. Must be called once per step.
  void observe_self(double progress, Vec2 gps_position);

  double progress() const { return progress_; }
  const Trajectory& trajectory() const { return traj_; }
  bool done() const { return progress_ >= traj_.end_time() - 1e-9; }
  /// An election or state gather this robot drives is still in flight.
  bool busy() const;
  bool isolated() const { return isolated_; }

  // Local tallies (the engine aggregates them into the report).
  std::size_t heartbeats_sent() const { return heartbeats_sent_; }
  int suspicions_raised() const { return suspicions_raised_; }
  int elections_won() const { return elections_won_; }
  int absorbs_completed() const { return absorbs_completed_; }

 private:
  struct Peer {
    bool known = false;
    bool absorbed = false;  ///< removed from the live set by a recovery
    std::int64_t last_heard = -1;
    Vec2 pos{};          ///< peer position in its last heartbeat
    Vec2 my_pos_then{};  ///< own position when that heartbeat arrived
    double progress = 0.0;
    bool suspected = false;
    std::int64_t suspect_since = -1;
    bool confirmed = false;
  };

  /// Per-suspect election / recovery state.
  struct Election {
    bool participating = false;
    double my_score = 0.0;
    double best_score = 0.0;
    int best_candidate = -1;
    std::int64_t claim_tick = -1;
    bool decided = false;
    bool gathering = false;
    std::int64_t gather_start = -1;
    bool done = false;
    bool state_sent = false;
    Vec2 last_pos{};
    /// Gathered survivor states: id -> (progress, trajectory). Ordered so
    /// the absorb input is id-sorted and deterministic.
    std::map<int, std::pair<double, Trajectory>> states;
  };

  std::int64_t suspicion_budget(int peer) const;
  void flood(net::Network& net, const net::Message& m);
  void handle_message(std::int64_t tick, const net::Message& m,
                      net::Network& net, std::vector<LocalEvent>& events);
  void run_absorb(std::int64_t tick, int suspect, Election& el,
                  net::Network& net, std::vector<LocalEvent>& events);
  void note_claim(int suspect, int candidate, double score, Vec2 last_pos,
                  std::int64_t tick);

  LocalControllerConfig cfg_;
  Trajectory traj_;
  double progress_ = 0.0;
  Vec2 gps_{};
  std::vector<Peer> peers_;
  std::map<int, Election> elections_;
  std::int64_t last_any_heard_ = 0;
  bool isolated_ = false;
  bool had_contact_ = false;

  /// Distinct suspecters known per suspect (own suspicion + kSuspect
  /// floods). Confirmation needs >= 2: a live peer drifting out of range
  /// is suspected only by its counterpart, while a real crash-stop is
  /// suspected by every ex-neighbor — the quorum separates the two
  /// without any oracle. (Cost: a crash whose robot had a single
  /// neighbor at death goes undetected; see README.)
  std::map<int, std::set<int>> suspecters_;

  // Flood duplicate filters (forward-once bookkeeping).
  std::set<std::pair<int, int>> seen_suspect_;    // (suspect, suspecter)
  std::set<std::pair<int, int>> seen_state_req_;  // (suspect, coordinator)
  std::set<std::pair<int, int>> seen_state_;      // (owner, suspect)
  std::set<std::pair<int, int>> seen_new_traj_;   // (target, suspect)
  std::set<int> seen_absorb_done_;                // suspect
  std::set<int> spliced_for_;                     // suspects already applied

  std::size_t heartbeats_sent_ = 0;
  int suspicions_raised_ = 0;
  int elections_won_ = 0;
  int absorbs_completed_ = 0;
};

}  // namespace anr
