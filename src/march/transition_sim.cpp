#include "march/transition_sim.h"

#include <algorithm>

#include "common/check.h"
#include "march/metrics.h"
#include "net/connectivity.h"
#include "net/unit_disk_graph.h"

namespace anr {

TransitionMetrics simulate_transition(const std::vector<Trajectory>& trajs,
                                      double r_c, double transition_end,
                                      int samples) {
  ANR_CHECK(!trajs.empty());
  ANR_CHECK(samples >= 2);
  const std::size_t n = trajs.size();

  double t0 = trajs[0].start_time();
  double t1 = trajs[0].end_time();
  for (const Trajectory& tr : trajs) {
    t0 = std::min(t0, tr.start_time());
    t1 = std::max(t1, tr.end_time());
  }
  t1 = std::max(t1, transition_end);

  TransitionMetrics out;
  for (const Trajectory& tr : trajs) {
    out.total_distance += tr.length();
    out.transition_distance += tr.length_between(t0, transition_end);
    out.adjustment_distance += tr.length_between(transition_end, t1);
  }

  // Initial links define the stable-link denominator (Def. 1: neighbors in
  // M1 at the start of the transition).
  std::vector<Vec2> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = trajs[i].position(t0);
  auto links = communication_links(pos, r_c);
  out.initial_links = static_cast<int>(links.size());

  std::vector<char> alive_full(links.size(), 1);
  std::vector<char> alive_transition(links.size(), 1);

  // Sample instants: uniform over [t0, t1] plus the transition boundary.
  std::vector<double> ts;
  ts.reserve(static_cast<std::size_t>(samples) + 1);
  for (int k = 0; k < samples; ++k) {
    ts.push_back(t0 + (t1 - t0) * k / (samples - 1));
  }
  ts.push_back(transition_end);
  std::sort(ts.begin(), ts.end());

  double r2 = r_c * r_c;
  for (double t : ts) {
    for (std::size_t i = 0; i < n; ++i) pos[i] = trajs[i].position(t);
    for (std::size_t li = 0; li < links.size(); ++li) {
      auto [a, b] = links[li];
      bool in_range = distance2(pos[static_cast<std::size_t>(a)],
                                pos[static_cast<std::size_t>(b)]) <= r2 + 1e-9;
      if (!in_range) {
        alive_full[li] = 0;
        if (t <= transition_end + 1e-12) alive_transition[li] = 0;
      }
    }
    if (out.global_connectivity && !net::is_connected(pos, r_c)) {
      out.global_connectivity = false;
      out.first_disconnect_time = t;
    }
    ++out.samples;
  }

  auto ratio = [&](const std::vector<char>& alive) {
    if (alive.empty()) return 1.0;
    std::size_t cnt = static_cast<std::size_t>(
        std::count(alive.begin(), alive.end(), char{1}));
    return static_cast<double>(cnt) / static_cast<double>(alive.size());
  };
  out.stable_links = static_cast<int>(
      std::count(alive_full.begin(), alive_full.end(), char{1}));
  out.stable_link_ratio = ratio(alive_full);
  out.stable_link_ratio_transition = ratio(alive_transition);
  return out;
}

}  // namespace anr
