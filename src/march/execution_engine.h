// ExecutionEngine: deterministic fault-injection execution of a march.
//
// Planning (MarchPlanner) proves a march exists that keeps the swarm one
// connected network; this engine *executes* a plan while a FaultSchedule
// breaks things, and exercises the paper's recoverability claim online:
//
//   - trajectories are stepped on a fixed tick; per-robot progress can lag
//     the shared schedule clock (stuck/slowed actuation) and is closed at
//     a bounded catch-up rate once the fault clears;
//   - an online connectivity guard (net::ConnectivityMonitor) watches the
//     alive network every tick at the effective radio range and at a
//     shrunk guard radius — the early warning fires strictly before the
//     hard Def. 2 guarantee can be lost, because gaps grow by at most one
//     tick of travel;
//   - recovery policies: pause-and-wait with bounded, doubling backoff for
//     transient trouble (the swarm freezes its schedule clock so gaps stop
//     growing; lagging robots keep catching up); peer-absorb via
//     recover_from_failure for permanent crash-stops; retarget_mid_march
//     splicing for scripted mission changes. When the retry budget runs
//     out the engine emits a degraded event and marches on;
//   - everything is a pure function of (plan, schedule, options): the
//     typed event log (injected -> detected -> recovery started/finished
//     -> degraded) serializes byte-identically for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/density.h"
#include "fault/fault_model.h"
#include "foi/foi.h"
#include "march/planner.h"
#include "march/trajectory.h"
#include "obs/metrics.h"

namespace anr {

/// Typed entries of the execution event log, in emission order.
enum class ExecEventType {
  kFaultInjected,     ///< a schedule window opened
  kFaultCleared,      ///< a transient window closed
  kFaultDetected,     ///< the monitor attributed trouble (crash detection)
  kDisconnected,      ///< hard connectivity (Def. 2) lost this tick
  kReconnected,       ///< hard connectivity regained
  kPauseStarted,      ///< pause-and-wait engaged (guard tripped)
  kPauseEnded,        ///< guard clean again; schedule clock resumed
  kRecoveryStarted,   ///< peer-absorb replan dispatched
  kRecoveryFinished,  ///< survivors' timelines spliced
  kRetargeted,        ///< mission change spliced mid-march
  kDegraded,          ///< a retry/backoff/wall budget was exhausted
  kCompleted,         ///< all alive robots reached their timeline ends
  // Decentralized-mode events (march/decentralized_engine.h): emitted by
  // the per-robot local controllers, never by a global oracle.
  kPeerSuspected,       ///< first peer passed its missed-heartbeat budget
  kSuspicionCleared,    ///< a suspected peer was heard again (partition heal)
  kIsolated,            ///< a robot stopped hearing anyone (cut off)
  kRejoined,            ///< an isolated robot regained contact and resumed
  kCoordinatorElected,  ///< closest-live-neighbor election settled
};

/// Stable lowercase name ("fault_injected", ...).
const char* exec_event_name(ExecEventType type);

struct ExecutionEvent {
  double t = 0.0;  ///< wall-clock time of the event
  ExecEventType type = ExecEventType::kCompleted;
  bool has_fault = false;                          ///< `fault` is meaningful
  fault::FaultKind fault = fault::FaultKind::kCrash;
  int robot = -1;      ///< original robot id when the event has a subject
  std::string detail;  ///< short deterministic description
};

/// A scripted mid-march mission change: at wall time `t`, abandon the
/// current march and head for `planner`'s M2 translated by `m2_offset`.
/// The planner must outlive the run() call.
struct MissionChange {
  double t = 0.0;
  const MarchPlanner* planner = nullptr;
  Vec2 m2_offset{};
};

struct ExecutionOptions {
  /// Tick length; 0 picks plan.total_time / 512.
  double dt = 0.0;
  /// Master switch for all recovery policies (pause, absorb). Mission
  /// changes execute either way — they are instructions, not recoveries.
  bool enable_recovery = true;
  /// Guard radius factor for the early-warning connectivity check. The
  /// engine auto-relaxes it per tick to the planned formation's bottleneck
  /// link (plus 2%), so the guard fires on regressions from the plan,
  /// never on the plan's own loose moments.
  double guard_factor = 0.85;
  /// Wall delay between a crash and its detection by peers.
  double detection_delay = 0.0;
  /// Pause-and-wait budget: up to this many doubling backoff windows.
  int max_pause_retries = 6;
  /// First backoff window; 0 picks 16 ticks.
  double initial_backoff = 0.0;
  /// Rate at which a lagging (formerly stuck/slowed) robot closes its
  /// schedule deficit once healthy.
  double catch_up_factor = 3.0;
  /// Hard wall-clock cap as a multiple of the plan horizon; exceeding it
  /// emits a degraded event and stops the run.
  double max_wall_factor = 25.0;
  /// Re-spread knobs forwarded to recover_from_failure.
  int recovery_lloyd_steps = 40;
  int recovery_cvt_samples = 8000;
  /// Seed for deterministic position-noise sampling.
  std::uint64_t noise_seed = 0x5eedULL;
  /// Scripted mission changes, applied in time order.
  std::vector<MissionChange> mission_changes;
  /// Metrics sink (anr_exec_* counters: runs, ticks, pauses, retries,
  /// crashes absorbed, guard trips, ...). Counters are batched from the
  /// finished report, so instrumentation cannot perturb the tick loop or
  /// the deterministic event log. Must outlive the engine.
  obs::Registry* registry = nullptr;
};

struct ExecutionReport {
  std::vector<ExecutionEvent> events;

  int num_robots = 0;
  std::vector<int> crashed;    ///< original ids, in detection order
  std::vector<int> survivors;  ///< original ids still alive at the end
  double survival_rate = 1.0;

  /// Global connectivity C over the alive network, sampled every tick.
  bool connected_throughout = true;
  double first_disconnect_time = -1.0;  ///< < 0 when never disconnected
  bool final_connected = true;

  /// Post-run stable link ratio L: fraction of the initial links between
  /// surviving robots still within r_c at the final positions.
  double stable_link_ratio = 1.0;

  double planned_distance = 0.0;   ///< fault-free total path length
  double executed_distance = 0.0;  ///< commanded distance actually flown
  double extra_distance = 0.0;     ///< executed - planned (recovery cost)

  int pauses = 0;      ///< pause-and-wait engagements
  int retries = 0;     ///< backoff windows consumed across pauses
  int recoveries = 0;  ///< peer-absorb operations dispatched
  int retargets = 0;   ///< mission changes spliced
  bool degraded = false;

  double end_time = 0.0;  ///< wall time when the run finished

  std::vector<int> final_ids;        ///< original ids for final_positions
  std::vector<Vec2> final_positions; ///< survivors' final (clean) positions
};

/// Executes plans under fault campaigns. Stateless across runs; one
/// engine can replay many (plan, schedule) pairs.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(double r_c, ExecutionOptions options = {});

  /// Runs `plan` under `schedule`. `m2_world` is the target FoI in world
  /// coordinates (the re-spread domain for crash absorption). Throws
  /// ContractViolation on an invalid schedule or empty plan.
  ExecutionReport run(const MarchPlan& plan,
                      const fault::FaultSchedule& schedule,
                      const FieldOfInterest& m2_world,
                      const DensityFn& density = {}) const;

  double comm_range() const { return r_c_; }
  const ExecutionOptions& options() const { return opt_; }

 private:
  /// Metric handles (all null when ExecutionOptions::registry is unset).
  struct Instruments {
    obs::Counter* runs = nullptr;
    obs::Counter* ticks = nullptr;
    obs::Counter* pauses = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* guard_trips = nullptr;
    obs::Counter* disconnects = nullptr;
    obs::Counter* retargets = nullptr;
    obs::Counter* degraded = nullptr;
  };

  double r_c_;
  ExecutionOptions opt_;
  Instruments ins_;
};

}  // namespace anr
