#include "march/execution_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "march/metrics.h"
#include "march/resilience.h"
#include "net/connectivity_monitor.h"

namespace anr {

const char* exec_event_name(ExecEventType type) {
  switch (type) {
    case ExecEventType::kFaultInjected:
      return "fault_injected";
    case ExecEventType::kFaultCleared:
      return "fault_cleared";
    case ExecEventType::kFaultDetected:
      return "fault_detected";
    case ExecEventType::kDisconnected:
      return "disconnected";
    case ExecEventType::kReconnected:
      return "reconnected";
    case ExecEventType::kPauseStarted:
      return "pause_started";
    case ExecEventType::kPauseEnded:
      return "pause_ended";
    case ExecEventType::kRecoveryStarted:
      return "recovery_started";
    case ExecEventType::kRecoveryFinished:
      return "recovery_finished";
    case ExecEventType::kRetargeted:
      return "retargeted";
    case ExecEventType::kDegraded:
      return "degraded";
    case ExecEventType::kCompleted:
      return "completed";
    case ExecEventType::kPeerSuspected:
      return "peer_suspected";
    case ExecEventType::kSuspicionCleared:
      return "suspicion_cleared";
    case ExecEventType::kIsolated:
      return "isolated";
    case ExecEventType::kRejoined:
      return "rejoined";
    case ExecEventType::kCoordinatorElected:
      return "coordinator_elected";
  }
  return "unknown";
}

namespace {

/// One robot's execution state.
struct Bot {
  int orig = -1;      ///< original plan index
  Trajectory traj;    ///< current timeline (may be spliced mid-run)
  double p = 0.0;     ///< progress: trajectory time reached
  bool crashed = false;
  double crash_time = 0.0;
  bool detected = false;  ///< crash noticed by peers
  Vec2 pos;           ///< clean (commanded) position at the current tick
};

std::string robot_detail(int orig) { return "robot " + std::to_string(orig); }

/// Largest edge of the Euclidean MST: the smallest radius at which `pts`
/// form one component. Prim, O(n^2), runs once per execution.
double bottleneck_radius(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  if (n <= 1) return 0.0;
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<char> in_tree(n, 0);
  best[0] = 0.0;
  double bottleneck = 0.0;
  for (std::size_t it = 0; it < n; ++it) {
    std::size_t u = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && (u == n || best[i] < best[u])) u = i;
    }
    in_tree[u] = 1;
    bottleneck = std::max(bottleneck, best[u]);
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) best[v] = std::min(best[v], distance(pts[u], pts[v]));
    }
  }
  return bottleneck;
}

std::string subject_detail(const fault::FaultEvent& e) {
  using fault::FaultKind;
  switch (e.kind) {
    case FaultKind::kLinkDropout:
      return "link " + std::to_string(e.link_a) + "-" +
             std::to_string(e.link_b);
    case FaultKind::kRangeDegradation:
      return "range_factor " + std::to_string(e.severity);
    default:
      return robot_detail(e.robot);
  }
}

}  // namespace

ExecutionEngine::ExecutionEngine(double r_c, ExecutionOptions options)
    : r_c_(r_c), opt_(std::move(options)) {
  ANR_CHECK(r_c_ > 0.0);
  ANR_CHECK(opt_.guard_factor > 0.0 && opt_.guard_factor <= 1.0);
  ANR_CHECK(opt_.catch_up_factor >= 1.0);
  if (opt_.registry != nullptr && opt_.registry->enabled()) {
    obs::Registry& reg = *opt_.registry;
    ins_.runs = reg.counter("anr_exec_runs_total", {}, "executions finished");
    ins_.ticks = reg.counter("anr_exec_ticks_total", {}, "simulation ticks");
    ins_.pauses = reg.counter("anr_exec_pauses_total", {},
                              "pause-and-wait engagements");
    ins_.retries = reg.counter("anr_exec_retries_total", {},
                               "backoff windows consumed across pauses");
    ins_.crashes = reg.counter("anr_exec_crashes_total", {},
                               "crash-stops detected and absorbed");
    ins_.recoveries = reg.counter("anr_exec_recoveries_total", {},
                                  "peer-absorb operations dispatched");
    ins_.guard_trips = reg.counter(
        "anr_exec_guard_trips_total", {},
        "clean-to-tripped transitions of the connectivity guard");
    ins_.disconnects = reg.counter("anr_exec_disconnects_total", {},
                                   "hard connectivity losses (Def. 2)");
    ins_.retargets = reg.counter("anr_exec_retargets_total", {},
                                 "mission changes spliced mid-march");
    ins_.degraded = reg.counter("anr_exec_degraded_runs_total", {},
                                "runs that exhausted a budget");
  }
}

ExecutionReport ExecutionEngine::run(const MarchPlan& plan,
                                     const fault::FaultSchedule& schedule,
                                     const FieldOfInterest& m2_world,
                                     const DensityFn& density) const {
  const std::size_t n0 = plan.trajectories.size();
  ANR_CHECK_MSG(n0 >= 1, "plan has no trajectories");
  {
    Status st = schedule.validate(static_cast<int>(n0));
    ANR_CHECK_MSG(st.ok(), st.to_string());
  }

  ExecutionReport report;
  report.num_robots = static_cast<int>(n0);
  for (const Trajectory& t : plan.trajectories) {
    report.planned_distance += t.length();
  }
  const auto initial_links = communication_links(plan.start, r_c_);

  fault::FaultModel model(schedule, opt_.noise_seed);
  net::ConnectivityMonitor monitor(r_c_, opt_.guard_factor);

  std::vector<Bot> bots(n0);
  double horizon = 0.0;
  for (std::size_t i = 0; i < n0; ++i) {
    bots[i].orig = static_cast<int>(i);
    bots[i].traj = plan.trajectories[i];
    bots[i].pos = bots[i].traj.position(0.0);
    horizon = std::max(horizon, bots[i].traj.end_time());
  }
  ANR_CHECK_MSG(horizon > 0.0, "plan horizon is empty");
  const double dt = opt_.dt > 0.0 ? opt_.dt : horizon / 512.0;
  const double max_wall = opt_.max_wall_factor * horizon;
  const double backoff0 =
      opt_.initial_backoff > 0.0 ? opt_.initial_backoff : 16.0 * dt;

  std::vector<MissionChange> missions = opt_.mission_changes;
  std::stable_sort(missions.begin(), missions.end(),
                   [](const MissionChange& a, const MissionChange& b) {
                     return a.t < b.t;
                   });
  std::size_t next_mission = 0;

  auto log = [&](double t, ExecEventType type, int robot,
                 const std::string& detail) {
    ExecutionEvent e;
    e.t = t;
    e.type = type;
    e.robot = robot;
    e.detail = detail;
    report.events.push_back(std::move(e));
  };
  auto log_fault = [&](double t, ExecEventType type,
                       const fault::FaultEvent& fe) {
    ExecutionEvent e;
    e.t = t;
    e.type = type;
    e.has_fault = true;
    e.fault = fe.kind;
    e.robot = fe.robot;
    e.detail = subject_detail(fe);
    report.events.push_back(std::move(e));
  };

  // Faults whose window opens exactly at t = 0.
  for (const fault::FaultEvent* fe : model.activated(-1.0, 0.0)) {
    log_fault(fe->t_start, ExecEventType::kFaultInjected, *fe);
  }

  double t = 0.0;
  double p_sched = 0.0;  // shared schedule clock (frozen while paused)
  bool paused = false;
  bool suppress_pause = false;  // retry budget spent; wait for a clean guard
  double backoff = backoff0;
  double pause_deadline = 0.0;
  int retry_count = 0;
  bool was_connected = true;
  bool was_guard_ok = true;
  int guard_trips = 0;
  int disconnects = 0;
  net::ConnectivityMonitor::Verdict verdict;

  // Reused per-tick scratch.
  std::vector<Vec2> actual;
  std::vector<Vec2> planned_now;
  std::vector<int> orig_to_alive(n0);
  std::vector<std::pair<int, int>> dropped_alive;

  std::int64_t tick = 0;
  for (;;) {
    ++tick;
    const double t_prev = t;
    t = static_cast<double>(tick) * dt;

    // --- fault window transitions (for the log) ---------------------------
    for (const fault::FaultEvent* fe : model.activated(t_prev, t)) {
      log_fault(fe->t_start, ExecEventType::kFaultInjected, *fe);
    }
    for (const fault::FaultEvent* fe : model.cleared(t_prev, t)) {
      log_fault(fe->t_end(), ExecEventType::kFaultCleared, *fe);
    }

    // --- motion -----------------------------------------------------------
    if (!paused) p_sched = std::min(p_sched + dt, horizon);
    for (Bot& b : bots) {
      if (b.crashed) continue;
      fault::RobotFaultState st = model.robot_state(b.orig, t);
      if (st.crashed) {
        // Crash-stop: freeze in place, radio dead from here on.
        b.crashed = true;
        b.crash_time = st.crash_time;
        continue;
      }
      double rate = st.stuck ? 0.0 : st.speed_factor;
      // A healthy robot behind schedule sprints to close the deficit; a
      // slowed actuator cannot (its factor *is* its ceiling).
      if (rate >= 1.0 - 1e-12 && b.p < p_sched - 1e-12) {
        rate = opt_.catch_up_factor;
      }
      double p_next = std::min(p_sched, b.p + dt * rate);
      if (p_next > b.p) {
        Vec2 next = b.traj.position(p_next);
        report.executed_distance += distance(b.pos, next);
        b.p = p_next;
        b.pos = next;
      }
    }

    // --- online connectivity monitor --------------------------------------
    actual.clear();
    std::fill(orig_to_alive.begin(), orig_to_alive.end(), -1);
    for (const Bot& b : bots) {
      if (b.crashed) continue;
      fault::RobotFaultState st = model.robot_state(b.orig, t);
      Vec2 pos = b.pos;
      if (st.noise_sigma > 0.0) {
        pos += model.noise_offset(b.orig, tick, st.noise_sigma);
      }
      orig_to_alive[static_cast<std::size_t>(b.orig)] =
          static_cast<int>(actual.size());
      actual.push_back(pos);
    }
    dropped_alive.clear();
    for (const auto& [a, b] : model.dropped_links(t)) {
      int ia = orig_to_alive[static_cast<std::size_t>(a)];
      int ib = orig_to_alive[static_cast<std::size_t>(b)];
      if (ia >= 0 && ib >= 0) dropped_alive.emplace_back(ia, ib);
    }
    // The guard compares the executed formation against the *planned*
    // configuration at the same schedule time: a plan legitimately passes
    // through loose moments (backbone links near r_c), so a fixed guard
    // fraction would trip on fault-free execution. Calibrate the guard to
    // the planned bottleneck and it fires only on regressions.
    planned_now.clear();
    for (const Bot& b : bots) {
      if (!b.crashed) planned_now.push_back(b.traj.position(p_sched));
    }
    double gf = opt_.guard_factor;
    const double bp = bottleneck_radius(planned_now);
    if (bp > gf * r_c_) {
      // Quantized upward so the monitor's per-radius checker set stays small.
      gf = std::min(1.0, std::ceil(1.02 * bp / r_c_ * 50.0) / 50.0);
    }
    verdict = monitor.assess(actual, model.range_factor(t), dropped_alive, gf);
    if (!verdict.guard_ok && was_guard_ok) ++guard_trips;
    was_guard_ok = verdict.guard_ok;
    if (!verdict.connected && was_connected) {
      ++disconnects;
      log(t, ExecEventType::kDisconnected, -1,
          "alive network split into components");
      report.connected_throughout = false;
      if (report.first_disconnect_time < 0.0) {
        report.first_disconnect_time = t;
      }
    } else if (verdict.connected && !was_connected) {
      log(t, ExecEventType::kReconnected, -1, "alive network rejoined");
    }
    was_connected = verdict.connected;

    // --- crash detection + peer absorb ------------------------------------
    std::vector<std::size_t> just_detected;
    for (std::size_t i = 0; i < bots.size(); ++i) {
      Bot& b = bots[i];
      if (b.crashed && !b.detected &&
          t >= b.crash_time + opt_.detection_delay) {
        b.detected = true;
        just_detected.push_back(i);
        report.crashed.push_back(b.orig);
        log(t, ExecEventType::kFaultDetected, b.orig,
            "crash-stop of " + robot_detail(b.orig));
      }
    }
    if (!just_detected.empty() && opt_.enable_recovery) {
      if (just_detected.size() >= bots.size()) {
        report.degraded = true;
        log(t, ExecEventType::kDegraded, -1, "all robots crashed");
        bots.clear();
        break;
      }
      ++report.recoveries;
      log(t, ExecEventType::kRecoveryStarted, -1,
          "absorbing " + std::to_string(just_detected.size()) +
              " crashed robot(s)");
      std::vector<Trajectory> planned;
      std::vector<int> failed;
      planned.reserve(bots.size());
      for (std::size_t i = 0; i < bots.size(); ++i) {
        planned.push_back(bots[i].traj);
        if (bots[i].crashed && bots[i].detected) {
          failed.push_back(static_cast<int>(i));
        }
      }
      try {
        FailureRecovery rec = recover_from_failure(
            planned, t, failed, m2_world, r_c_, density,
            opt_.recovery_lloyd_steps, opt_.recovery_cvt_samples);
        std::vector<Bot> next;
        next.reserve(rec.survivors.size());
        for (std::size_t k = 0; k < rec.survivors.size(); ++k) {
          Bot b = bots[static_cast<std::size_t>(rec.survivors[k])];
          b.traj = rec.trajectories[k];
          next.push_back(std::move(b));
        }
        bots = std::move(next);
        horizon = 0.0;
        for (const Bot& b : bots) {
          horizon = std::max(horizon, b.traj.end_time());
        }
        log(t, ExecEventType::kRecoveryFinished, -1,
            "survivor timelines spliced; " +
                std::to_string(rec.lloyd_steps) + " re-spread steps");
      } catch (const std::exception& e) {
        report.degraded = true;
        log(t, ExecEventType::kDegraded, -1,
            std::string("absorb failed: ") + e.what());
        bots.erase(std::remove_if(bots.begin(), bots.end(),
                                  [](const Bot& b) { return b.crashed; }),
                   bots.end());
      }
    }

    // --- pause-and-wait policy for transient trouble ----------------------
    if (opt_.enable_recovery) {
      if (!verdict.guard_ok) {
        if (paused) {
          if (t >= pause_deadline) {
            if (retry_count >= opt_.max_pause_retries) {
              report.degraded = true;
              paused = false;
              suppress_pause = true;
              log(t, ExecEventType::kDegraded, -1,
                  "pause retry budget exhausted (" +
                      std::to_string(retry_count) + " retries)");
              log(t, ExecEventType::kPauseEnded, -1, "resumed degraded");
            } else {
              ++retry_count;
              ++report.retries;
              backoff *= 2.0;
              pause_deadline = t + backoff;
            }
          }
        } else if (!suppress_pause) {
          paused = true;
          ++report.pauses;
          retry_count = 0;
          backoff = backoff0;
          pause_deadline = t + backoff;
          log(t, ExecEventType::kPauseStarted, -1,
              "connectivity guard tripped; schedule clock frozen");
        }
      } else {
        suppress_pause = false;
        if (paused) {
          paused = false;
          log(t, ExecEventType::kPauseEnded, -1, "guard clean; resumed");
        }
      }
    }

    // --- scripted mission changes -----------------------------------------
    while (next_mission < missions.size() && t >= missions[next_mission].t) {
      const MissionChange& mc = missions[next_mission];
      ++next_mission;
      ANR_CHECK_MSG(mc.planner != nullptr, "mission change without planner");
      std::vector<Trajectory> current;
      current.reserve(bots.size());
      for (const Bot& b : bots) {
        if (!b.crashed) current.push_back(b.traj);
      }
      try {
        RetargetResult rr =
            retarget_mid_march(current, p_sched, *mc.planner, mc.m2_offset);
        std::size_t k = 0;
        for (Bot& b : bots) {
          if (b.crashed) continue;
          b.traj = rr.trajectories[k++];
        }
        horizon = 0.0;
        for (const Bot& b : bots) {
          if (!b.crashed) horizon = std::max(horizon, b.traj.end_time());
        }
        ++report.retargets;
        log(t, ExecEventType::kRetargeted, -1,
            "mission change spliced at schedule time " +
                std::to_string(p_sched));
      } catch (const std::exception& e) {
        report.degraded = true;
        log(t, ExecEventType::kDegraded, -1,
            std::string("retarget failed: ") + e.what());
      }
    }

    // --- termination -------------------------------------------------------
    bool done = true;
    for (const Bot& b : bots) {
      if (b.crashed) {
        if (!b.detected) done = false;  // detection (and absorb) pending
        continue;
      }
      if (b.p < b.traj.end_time() - 1e-9) done = false;
    }
    if (done && next_mission >= missions.size()) {
      log(t, ExecEventType::kCompleted, -1, "all alive robots at rest");
      break;
    }
    if (t > max_wall) {
      report.degraded = true;
      log(t, ExecEventType::kDegraded, -1, "wall-clock budget exhausted");
      break;
    }
  }

  // --- final accounting ----------------------------------------------------
  report.end_time = t;
  report.final_connected = verdict.connected;
  for (const Bot& b : bots) {
    if (b.crashed) continue;
    report.survivors.push_back(b.orig);
    report.final_ids.push_back(b.orig);
    report.final_positions.push_back(b.pos);
  }
  report.survival_rate =
      n0 == 0 ? 0.0
              : static_cast<double>(report.survivors.size()) /
                    static_cast<double>(n0);
  report.extra_distance = report.executed_distance - report.planned_distance;

  std::vector<char> survives(n0, 0);
  std::vector<Vec2> final_by_orig(n0);
  for (std::size_t k = 0; k < report.final_ids.size(); ++k) {
    survives[static_cast<std::size_t>(report.final_ids[k])] = 1;
    final_by_orig[static_cast<std::size_t>(report.final_ids[k])] =
        report.final_positions[k];
  }
  int link_count = 0, preserved = 0;
  for (const auto& [a, b] : initial_links) {
    if (!survives[static_cast<std::size_t>(a)] ||
        !survives[static_cast<std::size_t>(b)]) {
      continue;
    }
    ++link_count;
    if (distance(final_by_orig[static_cast<std::size_t>(a)],
                 final_by_orig[static_cast<std::size_t>(b)]) <=
        r_c_ * (1.0 + 1e-12)) {
      ++preserved;
    }
  }
  report.stable_link_ratio =
      link_count == 0 ? 1.0
                      : static_cast<double>(preserved) /
                            static_cast<double>(link_count);

  // Batched instrumentation: counts come from the finished report, so the
  // tick loop runs identically with or without a registry attached.
  obs::inc(ins_.runs);
  obs::inc(ins_.ticks, static_cast<std::uint64_t>(tick));
  obs::inc(ins_.pauses, static_cast<std::uint64_t>(report.pauses));
  obs::inc(ins_.retries, static_cast<std::uint64_t>(report.retries));
  obs::inc(ins_.crashes, report.crashed.size());
  obs::inc(ins_.recoveries, static_cast<std::uint64_t>(report.recoveries));
  obs::inc(ins_.guard_trips, static_cast<std::uint64_t>(guard_trips));
  obs::inc(ins_.disconnects, static_cast<std::uint64_t>(disconnects));
  obs::inc(ins_.retargets, static_cast<std::uint64_t>(report.retargets));
  if (report.degraded) obs::inc(ins_.degraded);
  return report;
}

}  // namespace anr
