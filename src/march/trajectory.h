// Robot trajectories: timed piecewise-linear paths with obstacle detours.
//
// The harmonic map gives each robot a straight-line path (Eqn. (2)); when
// the line crosses a hole, "the robot goes along the boundary until it can
// follow its computed moving path again" (paper Sec. III-D-3). We realize
// that as a polyline hugging the shorter boundary arc, traversed at
// constant speed so the robot still arrives at time t1.
#pragma once

#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"

namespace anr {

/// Timed piecewise-linear path. Waypoint times are nondecreasing;
/// position(t) clamps outside [start_time, end_time].
class Trajectory {
 public:
  /// Appends a waypoint; `t` must be >= the last waypoint's time.
  void append(Vec2 p, double t);

  Vec2 position(double t) const;
  Vec2 start() const;
  Vec2 end() const;
  double start_time() const;
  double end_time() const;

  /// Total geometric length of the polyline.
  double length() const;

  /// Length of the portion traversed within [t0, t1].
  double length_between(double t0, double t1) const;

  std::size_t num_waypoints() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }

  const std::vector<Vec2>& waypoints() const { return pts_; }
  const std::vector<double>& times() const { return times_; }

  /// Prefix of this trajectory up to time t (ends exactly at position(t)).
  Trajectory truncated_at(double t) const;

  /// Appends all of `tail`'s waypoints (tail must start no earlier than
  /// this trajectory ends; a duplicated joint point is skipped).
  void extend(const Trajectory& tail);

 private:
  std::vector<Vec2> pts_;
  std::vector<double> times_;
};

/// Waypoints (exclusive of a and b) routing a->b around the obstacle
/// polygons; empty when the straight segment is clear. Obstacles must be
/// disjoint; a and b must lie outside every obstacle.
std::vector<Vec2> route_around(Vec2 a, Vec2 b,
                               const std::vector<Polygon>& obstacles);

/// Builds a constant-speed trajectory from p (at t0) to q (at t1) that
/// detours around `obstacles`.
Trajectory make_timed_path(Vec2 p, Vec2 q, double t0, double t1,
                           const std::vector<Polygon>& obstacles);

/// Builds a constant-speed trajectory through `via` (first point at t0,
/// last at t1), detouring each leg around `obstacles`. With a two-point
/// polyline this is exactly make_timed_path. Used for terrain geodesics,
/// whose waypoints still honor FoI hole detours per leg.
Trajectory make_timed_path_via(const std::vector<Vec2>& via, double t0,
                               double t1,
                               const std::vector<Polygon>& obstacles);

}  // namespace anr
