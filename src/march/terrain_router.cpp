#include "march/terrain_router.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/task_arena.h"

namespace anr {

const char* motion_model_name(MotionModel m) {
  switch (m) {
    case MotionModel::kStraight:
      return "straight";
    case MotionModel::kTerrainGeodesic:
      return "terrain_geodesic";
  }
  return "unknown";
}

TerrainRouter::TerrainRouter(const TrajectoryOptions& options,
                             const BBox& domain, double r_c) {
  ANR_CHECK_MSG(domain.valid(), "terrain router needs a valid domain box");
  ANR_CHECK(r_c > 0.0);
  const double pad = std::max(0.0, options.terrain.padding_cr) * r_c;
  CostFieldSpec spec;
  spec.bounds.expand({domain.lo.x - pad, domain.lo.y - pad});
  spec.bounds.expand({domain.hi.x + pad, domain.hi.y + pad});
  spec.max_cells = options.terrain.max_cells;
  spec.slope_weight = options.terrain.slope_weight;
  spec.uphill_penalty = options.terrain.uphill_penalty;
  spec.mud = options.terrain.mud;
  spec.keep_out = options.terrain.keep_out;
  field_ = CostField::build(spec, options.terrain.terrain);
}

void TerrainRouter::solve(const std::vector<Vec2>& starts) {
  starts_ = starts;
  fields_.clear();
  if (field_.uniform()) return;  // straight-equivalent: nothing to solve
  fields_.resize(starts.size());
  // One independent sequential solve per robot; each chunk writes only its
  // own result slots, so the fields are byte-identical at any thread count.
  parallel_chunks(starts.size(), 1,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t r = begin; r < end; ++r) {
                      if (field_.contains(starts_[r])) {
                        fields_[r] = fast_march(field_, starts_[r]);
                      } else {
                        fields_[r].source_blocked = true;
                      }
                    }
                  });
  stats_.solves += static_cast<int>(starts.size());
}

double TerrainRouter::travel_time(int r, Vec2 goal) const {
  const std::size_t ur = static_cast<std::size_t>(r);
  ANR_CHECK(ur < starts_.size());
  const double lb = field_.min_cost() * distance(starts_[ur], goal);
  if (field_.uniform()) return lb;
  ANR_CHECK(ur < fields_.size());
  const FastMarchResult& fm = fields_[ur];
  if (fm.source_blocked || !field_.contains(goal)) return lb;
  const double t = sample_toa(field_, fm.toa, goal);
  return t < CostField::kInf ? t : lb;
}

double TerrainRouter::path_length_bound(int r, Vec2 goal) const {
  const std::size_t ur = static_cast<std::size_t>(r);
  ANR_CHECK(ur < starts_.size());
  if (field_.uniform()) return distance(starts_[ur], goal);
  // Any path of cost T has Euclidean length at most T / min_cost; the
  // straight-line fallbacks hit this with equality.
  return travel_time(r, goal) / field_.min_cost();
}

Vec2 TerrainRouter::unblocked_target(Vec2 goal, bool* snapped) {
  if (snapped != nullptr) *snapped = false;
  if (!field_.has_blocked() || !field_.contains(goal) ||
      !field_.blocked_at(goal)) {
    return goal;
  }
  const int nx = field_.nx(), ny = field_.ny();
  const int gi = field_.index_of(goal);
  const int gx = gi % nx, gy = gi / nx;
  const int max_rad = std::max(nx, ny);
  for (int rad = 1; rad < max_rad; ++rad) {
    int best = -1;
    double best_d2 = CostField::kInf;
    for (int iy = gy - rad; iy <= gy + rad; ++iy) {
      if (iy < 0 || iy >= ny) continue;
      const bool edge_row = (iy == gy - rad || iy == gy + rad);
      const int step = edge_row ? 1 : 2 * rad;  // ring perimeter only
      for (int ix = gx - rad; ix <= gx + rad; ix += step) {
        if (ix < 0 || ix >= nx) continue;
        const int i = iy * nx + ix;
        if (field_.blocked(i)) continue;
        const double d2 = distance2(field_.center(i), goal);
        if (d2 < best_d2 - 1e-12 ||
            (std::abs(d2 - best_d2) <= 1e-12 && i < best)) {
          best_d2 = d2;
          best = i;
        }
      }
    }
    if (best >= 0) {
      if (snapped != nullptr) *snapped = true;
      ++stats_.goal_snapped;
      return field_.center(best);
    }
  }
  return goal;  // field fully blocked; route() degrades downstream
}

TerrainRoute TerrainRouter::route(int r, Vec2 goal) {
  const std::size_t ur = static_cast<std::size_t>(r);
  ANR_CHECK(ur < starts_.size());
  TerrainRoute out;
  const Vec2 start = starts_[ur];
  auto fallback = [&](const char* reason, int* tally) {
    out.points = {start, goal};
    out.geodesic = false;
    out.fallback = reason;
    ++stats_.fallbacks;
    ++*tally;
    return out;
  };
  if (field_.uniform()) {
    out.points = {start, goal};
    return out;  // straight IS the geodesic; not a degradation
  }
  if (!field_.contains(start) || !field_.contains(goal)) {
    return fallback("out_of_domain", &stats_.fb_out_of_domain);
  }
  ANR_CHECK(ur < fields_.size());
  const FastMarchResult& fm = fields_[ur];
  if (fm.source_blocked) {
    return fallback("blocked_start", &stats_.fb_blocked_start);
  }
  GeodesicPath gp = extract_geodesic(field_, fm, start, goal);
  if (!gp.ok) {
    if (gp.failure == "stuck_descent") {
      return fallback("stuck_descent", &stats_.fb_stuck_descent);
    }
    return fallback("unreachable", &stats_.fb_unreachable);
  }
  out.points = std::move(gp.points);
  out.geodesic = true;
  return out;
}

bool TerrainRouter::segment_blocked(Vec2 a, Vec2 b) const {
  if (!field_.has_blocked()) return false;
  if (!field_.contains(a) || !field_.contains(b)) return false;
  return field_.segment_blocked(a, b);
}

}  // namespace anr
