// Marching metrics (paper Sec. II: Definitions 1 and 2).
//
// - Total stable link ratio L: fraction of M1 communication links that
//   stay within range for the *entire* transition.
// - Global connectivity C: the network is one connected component at
//   every instant.
// - Total moving distance D: sum of robot path lengths.
//
// For straight-line synchronized motion the inter-robot distance is convex
// in t, so a link survives iff it holds at both endpoints — that is the
// cheap predictor the rotation search optimizes; the transition simulator
// measures the real sampled metric (detours break linearity).
#pragma once

#include <utility>
#include <vector>

#include "geom/vec2.h"

namespace anr {

/// M1 communication links (unordered robot index pairs) within `r_c`.
std::vector<std::pair<int, int>> communication_links(
    const std::vector<Vec2>& positions, double r_c);

/// Endpoint-only predicted stable link ratio for straight-line motion from
/// p to q: a link survives iff both endpoint configurations keep it within
/// r_c. Returns 1.0 when there are no links.
double predicted_stable_link_ratio(const std::vector<Vec2>& p,
                                   const std::vector<Vec2>& q,
                                   const std::vector<std::pair<int, int>>& links,
                                   double r_c);

/// Path-length-aware predicted stable link ratio for curved (geodesic)
/// motion. `path_lengths[i]` bounds the Euclidean length of robot i's
/// routed path from p_i to q_i. A path of length L between endpoints at
/// distance d stays within 0.5*sqrt(L^2 - d^2) of the straight chord, so
/// under constant-progress motion the pair distance is bounded by the
/// straight-line endpoint maximum plus both deviations. A link survives
/// iff it holds at both endpoints AND that bound stays within r_c; with
/// straight paths (L == d) this reduces exactly to
/// predicted_stable_link_ratio.
double predicted_stable_link_ratio_bounded(
    const std::vector<Vec2>& p, const std::vector<Vec2>& q,
    const std::vector<double>& path_lengths,
    const std::vector<std::pair<int, int>>& links, double r_c);

/// Sum of straight-line displacements |q_i - p_i|.
double total_displacement(const std::vector<Vec2>& p,
                          const std::vector<Vec2>& q);

}  // namespace anr
