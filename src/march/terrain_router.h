// Terrain-aware routing for the marching layer.
//
// Wraps the fast-marching solver (terrain/fast_marching.h) behind the
// interface plan_impl needs: one ToA field per robot start (solved in
// parallel over robots — each solve is sequential and writes only its own
// output, so the fields are byte-identical at any thread count), travel
// times and path-length bounds for the rotation search, keep-out-aware
// target snapping, and geodesic waypoint extraction with a typed
// straight-line degradation path.
//
// Uniform-field contract: when the rasterized cost field is uniform (no
// keep-out cells, a single cost value), geodesics ARE straight lines and
// travel times are proportional to Euclidean distance. The planner
// detects that case and runs the unmodified straight-line pipeline, so
// kTerrainGeodesic plans over a uniform field are byte-identical to
// kStraight plans by construction.
#pragma once

#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"
#include "terrain/fast_marching.h"
#include "terrain/height_field.h"

namespace anr {

/// Step-7 motion model (paper Eqn. (2) vs terrain geodesics).
enum class MotionModel {
  kStraight,         ///< straight lines with hole detours (the paper)
  kTerrainGeodesic,  ///< geodesics in the terrain cost metric
};

/// Stable lowercase name ("straight", "terrain_geodesic").
const char* motion_model_name(MotionModel m);

/// Cost-field knobs for kTerrainGeodesic (see CostFieldSpec).
struct TerrainCostOptions {
  HeightField terrain;          ///< flat by default
  double slope_weight = 0.0;    ///< cost = 1 + slope_weight * |∇z|
  double uphill_penalty = 0.0;  ///< asymmetric uphill slowness
  int max_cells = 96;           ///< grid resolution along the longer axis
  double padding_cr = 1.0;      ///< domain padding in multiples of r_c
  std::vector<MudPatch> mud;
  std::vector<Polygon> keep_out;
};

/// Trajectory-generation options carried by PlannerOptions.
struct TrajectoryOptions {
  MotionModel motion = MotionModel::kStraight;
  TerrainCostOptions terrain;
};

/// Routing tallies for plan diagnostics / anr_fmm_* counters.
struct RouterStats {
  int solves = 0;        ///< fast-marching solves run
  int goal_snapped = 0;  ///< targets moved out of keep-out cells
  int fallbacks = 0;     ///< routes degraded to straight lines (total)
  int fb_blocked_start = 0;
  int fb_unreachable = 0;
  int fb_stuck_descent = 0;
  int fb_out_of_domain = 0;
};

/// One routed leg. `points` always starts at the robot's start position
/// and ends at the goal; `fallback` names the degradation reason when the
/// route is a straight line because geodesic extraction was impossible.
struct TerrainRoute {
  std::vector<Vec2> points;
  bool geodesic = false;
  const char* fallback = nullptr;  ///< "blocked_start", "unreachable",
                                   ///< "stuck_descent", "out_of_domain"
};

class TerrainRouter {
 public:
  /// Rasterizes the cost field over `domain` padded by padding_cr * r_c.
  TerrainRouter(const TrajectoryOptions& options, const BBox& domain,
                double r_c);

  const CostField& field() const { return field_; }
  /// True when routing degenerates to straight-line motion exactly.
  bool uniform() const { return field_.uniform(); }

  /// Runs one fast-marching solve per start position (parallel over
  /// robots). Must be called before travel_time / route. No-op on a
  /// uniform field.
  void solve(const std::vector<Vec2>& starts);

  /// Cost-metric travel time from robot r's start to `goal`. Falls back
  /// to the min-cost straight-line bound when the goal is outside the
  /// field or unreached.
  double travel_time(int r, Vec2 goal) const;

  /// Upper bound on the Euclidean length of robot r's routed path
  /// (travel_time / min_cost; exactly the straight distance on fallback).
  double path_length_bound(int r, Vec2 goal) const;

  /// Nearest unblocked cell center when `goal` lies in a keep-out cell
  /// (deterministic ring scan); `goal` unchanged otherwise.
  Vec2 unblocked_target(Vec2 goal, bool* snapped);

  /// Geodesic waypoints for robot r, or a straight fallback with a typed
  /// reason. Tallies into stats().
  TerrainRoute route(int r, Vec2 goal);

  /// True when segment a->b crosses a keep-out cell (false when either
  /// endpoint is outside the field — nothing to assess there).
  bool segment_blocked(Vec2 a, Vec2 b) const;

  const RouterStats& stats() const { return stats_; }
  const std::vector<FastMarchResult>& fields() const { return fields_; }

 private:
  CostField field_;
  std::vector<Vec2> starts_;
  std::vector<FastMarchResult> fields_;
  RouterStats stats_;
};

}  // namespace anr
