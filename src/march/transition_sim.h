// Transition simulator: plays back a set of trajectories and measures the
// paper's evaluation metrics (Sec. IV) by dense time sampling.
#pragma once

#include <vector>

#include "march/trajectory.h"

namespace anr {

/// Measured outcome of one marching run.
struct TransitionMetrics {
  /// Total moving distance D (Sec. II-A): sum of all path lengths over the
  /// whole timeline (transition + minor adjustment).
  double total_distance = 0.0;
  /// Distance traversed during the transition window only.
  double transition_distance = 0.0;
  /// Distance traversed during the adjustment phase.
  double adjustment_distance = 0.0;

  /// Total stable link ratio L (Def. 1) measured over the whole timeline.
  double stable_link_ratio = 0.0;
  /// L measured over the transition window only.
  double stable_link_ratio_transition = 0.0;

  /// Global connectivity C (Def. 2): one connected component at every
  /// sampled instant of the whole timeline.
  bool global_connectivity = true;
  /// First sampled time at which the network split; < 0 when it never did.
  double first_disconnect_time = -1.0;

  int initial_links = 0;
  int stable_links = 0;
  int samples = 0;
};

/// Samples the timeline at `samples` uniform instants (plus both window
/// boundaries) and computes the metrics. `transition_end` splits the
/// timeline into transition and adjustment.
TransitionMetrics simulate_transition(const std::vector<Trajectory>& trajs,
                                      double r_c, double transition_end,
                                      int samples = 160);

}  // namespace anr
