#include "march/repair.h"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>

#include "common/check.h"
#include "net/connectivity.h"

namespace anr {

RepairReport repair_targets(
    const std::vector<Vec2>& start, std::vector<Vec2>& targets,
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<char>& is_boundary, double r_c,
    const std::function<double(Vec2, Vec2)>& link_metric) {
  const std::size_t n = start.size();
  ANR_CHECK(targets.size() == n);
  ANR_CHECK(adjacency.size() == n);
  ANR_CHECK(is_boundary.size() == n);

  std::function<double(Vec2, Vec2)> metric = link_metric;
  if (!metric) metric = [](Vec2 a, Vec2 b) { return distance(a, b); };
  auto survives = [&](int u, int v) {
    return metric(targets[static_cast<std::size_t>(u)],
                  targets[static_cast<std::size_t>(v)]) <= r_c + 1e-9;
  };

  RepairReport rep;
  rep.was_repaired.assign(n, 0);

  // BFS from boundary vertices over surviving links.
  std::vector<std::vector<int>> surv_adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int u : adjacency[v]) {
      if (survives(static_cast<int>(v), u)) surv_adj[v].push_back(u);
    }
  }
  std::vector<int> sources;
  for (std::size_t v = 0; v < n; ++v) {
    if (is_boundary[v]) sources.push_back(static_cast<int>(v));
  }
  ANR_CHECK_MSG(!sources.empty(), "repair needs at least one boundary vertex");
  rep.boundary_hops = net::bfs_hops(surv_adj, sources);

  // Unreached components over M1 links restricted to unreached vertices.
  std::vector<int> comp(n, -1);
  int ncomp = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (rep.boundary_hops[seed] >= 0 || comp[seed] >= 0) continue;
    int id = ncomp++;
    std::queue<int> q;
    q.push(static_cast<int>(seed));
    comp[seed] = id;
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int u : adjacency[static_cast<std::size_t>(v)]) {
        if (rep.boundary_hops[static_cast<std::size_t>(u)] < 0 &&
            comp[static_cast<std::size_t>(u)] < 0) {
          comp[static_cast<std::size_t>(u)] = id;
          q.push(u);
        }
      }
    }
  }
  rep.subgroups = ncomp;
  if (ncomp == 0) return rep;

  // Per component: best (reference hop, reference id, member id).
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<std::array<int, 3>> best(
      static_cast<std::size_t>(ncomp), std::array<int, 3>{kInf, kInf, kInf});
  for (std::size_t v = 0; v < n; ++v) {
    if (comp[v] < 0) continue;
    for (int u : adjacency[v]) {
      int hops = rep.boundary_hops[static_cast<std::size_t>(u)];
      if (hops < 0) continue;  // neighbor also unreached
      std::array<int, 3> key{hops, u, static_cast<int>(v)};
      auto& slot = best[static_cast<std::size_t>(comp[v])];
      slot = std::min(slot, key);
    }
  }

  // Apply the parallel march: every member of a component copies the
  // displacement of the component's reference neighbor.
  for (std::size_t v = 0; v < n; ++v) {
    if (comp[v] < 0) continue;
    const auto& key = best[static_cast<std::size_t>(comp[v])];
    ANR_CHECK_MSG(key[0] < kInf,
                  "isolated subgroup with no reached M1 neighbor — M1 "
                  "network disconnected?");
    int ref = key[1];
    Vec2 disp = targets[static_cast<std::size_t>(ref)] -
                start[static_cast<std::size_t>(ref)];
    targets[v] = start[v] + disp;
    rep.was_repaired[v] = 1;
    ++rep.repaired;
  }
  return rep;
}

}  // namespace anr
