#include "march/mission.h"

#include <algorithm>

#include "common/check.h"

namespace anr {

MissionResult run_mission(const FieldOfInterest& start_foi,
                          const std::vector<Vec2>& deployment,
                          const std::vector<MissionLeg>& legs, double r_c,
                          const PlannerOptions& options, int time_samples) {
  ANR_CHECK(!legs.empty());
  MissionResult out;
  out.final_positions = deployment;

  const FieldOfInterest* current = &start_foi;
  for (const MissionLeg& leg : legs) {
    PlannerOptions opt = options;
    if (leg.density) opt.density = leg.density;
    // Legs are world-placed FoIs: the planner's M2 shape is the leg
    // itself, marched to with zero offset.
    MarchPlanner planner(*current, leg.foi, r_c, std::move(opt));
    MissionLegResult res;
    res.name = leg.name;
    res.plan = planner.plan(out.final_positions, {0.0, 0.0});
    res.metrics = simulate_transition(res.plan.trajectories, r_c,
                                      res.plan.transition_end, time_samples);

    out.total_distance += res.metrics.total_distance;
    out.worst_link_ratio =
        std::min(out.worst_link_ratio, res.metrics.stable_link_ratio);
    out.always_connected =
        out.always_connected && res.metrics.global_connectivity;
    out.final_positions = res.plan.final_positions;
    current = &leg.foi;
    out.legs.push_back(std::move(res));
  }
  return out;
}

}  // namespace anr
