#include "march/decentralized_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "march/local_controller.h"
#include "net/fault_bridge.h"
#include "net/unit_disk_graph.h"

namespace anr {

namespace {

std::string robot_detail(int id) { return "robot " + std::to_string(id); }

std::string subject_detail(const fault::FaultEvent& e) {
  using fault::FaultKind;
  switch (e.kind) {
    case FaultKind::kLinkDropout:
      return "link " + std::to_string(e.link_a) + "-" +
             std::to_string(e.link_b);
    case FaultKind::kRangeDegradation:
      return "range_factor " + std::to_string(e.severity);
    default:
      return robot_detail(e.robot);
  }
}

/// Connectivity of the alive sub-network after removing the dropped
/// links — the observational C sample; controllers never see it.
bool alive_connected(const std::vector<std::vector<int>>& adj,
                     const std::vector<char>& alive,
                     const std::vector<std::pair<int, int>>& dropped) {
  const int n = static_cast<int>(adj.size());
  int first = -1;
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (alive[static_cast<std::size_t>(i)]) {
      ++count;
      if (first < 0) first = i;
    }
  }
  if (count <= 1) return true;
  auto is_dropped = [&dropped](int a, int b) {
    const int lo = a < b ? a : b;
    const int hi = a < b ? b : a;
    for (const auto& [x, y] : dropped) {
      if (x == lo && y == hi) return true;
    }
    return false;
  };
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::deque<int> frontier{first};
  seen[static_cast<std::size_t>(first)] = 1;
  int reached = 1;
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (seen[static_cast<std::size_t>(v)] ||
          !alive[static_cast<std::size_t>(v)] || is_dropped(u, v)) {
        continue;
      }
      seen[static_cast<std::size_t>(v)] = 1;
      ++reached;
      frontier.push_back(v);
    }
  }
  return reached == count;
}

}  // namespace

DecentralizedEngine::DecentralizedEngine(double r_c,
                                         DecentralizedOptions options)
    : r_c_(r_c), opt_(std::move(options)) {
  ANR_CHECK(r_c_ > 0.0);
  ANR_CHECK(opt_.max_delay >= 1);
  ANR_CHECK(opt_.loss_rate >= 0.0 && opt_.loss_rate < 1.0);
  ANR_CHECK(opt_.catch_up_factor >= 1.0);
  ANR_CHECK(opt_.heartbeat_period >= 1);
  ANR_CHECK(opt_.suspicion_ticks >
            opt_.heartbeat_period + opt_.max_delay + 1);
  if (opt_.registry != nullptr && opt_.registry->enabled()) {
    obs::Registry& reg = *opt_.registry;
    ins_.runs =
        reg.counter("anr_dex_runs_total", {}, "decentralized runs finished");
    ins_.rounds = reg.counter("anr_dex_rounds_total", {}, "network rounds");
    ins_.messages = reg.counter("anr_dex_messages_total", {},
                                "transmission attempts (copies)");
    ins_.bytes =
        reg.counter("anr_dex_bytes_total", {}, "wire bytes transmitted");
    ins_.lost = reg.counter("anr_dex_lost_total", {},
                            "transmissions lost to the channel");
    ins_.retransmissions = reg.counter("anr_dex_retransmissions_total", {},
                                       "reliable-layer retransmissions");
    ins_.heartbeats =
        reg.counter("anr_dex_heartbeats_total", {}, "heartbeat broadcasts");
    ins_.suspicions = reg.counter("anr_dex_suspicions_total", {},
                                  "suspicion episodes raised");
    ins_.isolations = reg.counter("anr_dex_isolations_total", {},
                                  "robots cut off in total silence");
    ins_.elections = reg.counter("anr_dex_elections_total", {},
                                 "coordinator elections won");
    ins_.absorbs = reg.counter("anr_dex_absorbs_total", {},
                               "peer-absorb recoveries completed");
    ins_.detection_latency =
        reg.histogram("anr_dex_detection_seconds", {},
                      "crash to first distributed confirm (wall seconds)");
    ins_.recovery_latency =
        reg.histogram("anr_dex_recovery_seconds", {},
                      "confirm to absorb flooded (wall seconds)");
  }
}

DecentralizedReport DecentralizedEngine::run(
    const MarchPlan& plan, const fault::FaultSchedule& schedule,
    const FieldOfInterest& m2_world, const DensityFn& density) const {
  const std::size_t n = plan.trajectories.size();
  ANR_CHECK_MSG(n >= 1, "plan has no trajectories");
  {
    Status st = schedule.validate(static_cast<int>(n));
    ANR_CHECK_MSG(st.ok(), st.to_string());
  }

  DecentralizedReport report;
  ExecutionReport& ex = report.exec;
  ex.num_robots = static_cast<int>(n);

  const fault::FaultModel model(schedule, opt_.noise_seed);

  double horizon = 0.0;
  for (const Trajectory& traj : plan.trajectories) {
    ANR_CHECK_MSG(!traj.empty(), "plan has an empty trajectory");
    horizon = std::max(horizon, traj.end_time());
    ex.planned_distance += traj.length();
  }
  ANR_CHECK_MSG(horizon > 0.0, "plan horizon is empty");
  const double dt = opt_.dt > 0.0 ? opt_.dt : horizon / 512.0;
  const double max_wall = opt_.max_wall_factor * horizon;
  const double lag_tol = opt_.lag_tolerance > 0.0
                             ? opt_.lag_tolerance
                             : (opt_.max_delay + 3) * dt;

  // --- local controllers (all the control intelligence lives here) ------
  std::vector<LocalController> ctrl;
  ctrl.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    LocalControllerConfig cfg;
    cfg.id = static_cast<int>(i);
    cfg.num_robots = static_cast<int>(n);
    cfg.r_c = r_c_;
    cfg.dt = dt;
    cfg.heartbeat_period = opt_.heartbeat_period;
    cfg.suspicion_ticks = opt_.suspicion_ticks;
    cfg.suspicion_jitter = opt_.suspicion_jitter;
    cfg.confirm_ticks = opt_.confirm_ticks;
    cfg.election_ticks = opt_.election_ticks;
    cfg.gather_ticks = opt_.gather_ticks;
    cfg.isolation_ticks = opt_.isolation_ticks;
    cfg.lag_tolerance = lag_tol;
    cfg.catch_up_factor = opt_.catch_up_factor;
    cfg.suspicion_range_factor = opt_.suspicion_range_factor;
    cfg.timeout_seed = opt_.timeout_seed;
    cfg.enable_recovery = opt_.enable_recovery;
    cfg.m2_world = &m2_world;
    cfg.density = density ? &density : nullptr;
    cfg.recovery_lloyd_steps = opt_.recovery_lloyd_steps;
    cfg.recovery_cvt_samples = opt_.recovery_cvt_samples;
    ctrl.emplace_back(std::move(cfg), plan.trajectories[i]);
  }

  std::vector<Vec2> pos(n);   // clean (commanded) positions
  std::vector<Vec2> gps(n);   // noisy positions: what radios and GPS see
  std::vector<char> alive(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = plan.trajectories[i].position(plan.trajectories[i].start_time());
    gps[i] = pos[i];
  }

  // --- the hostile channel ---------------------------------------------
  net::Network net(net::unit_disk_adjacency(gps, r_c_ * model.range_factor(0.0)));
  if (opt_.max_delay > 1) net.set_link_delays(opt_.max_delay, opt_.delay_seed);
  if (opt_.loss_rate > 0.0) net.set_message_loss(opt_.loss_rate, opt_.loss_seed);
  net.set_reliability(opt_.reliability);
  net.set_link_outage(net::make_fault_outage(model, dt));

  // --- logging helpers --------------------------------------------------
  auto log = [&ex](double t, ExecEventType type, int robot,
                   const std::string& detail) {
    ExecutionEvent e;
    e.t = t;
    e.type = type;
    e.robot = robot;
    e.detail = detail;
    ex.events.push_back(std::move(e));
  };
  auto log_fault = [&ex](double t, ExecEventType type,
                         const fault::FaultEvent& fe) {
    ExecutionEvent e;
    e.t = t;
    e.type = type;
    e.has_fault = true;
    e.fault = fe.kind;
    e.robot = fe.robot;
    e.detail = subject_detail(fe);
    ex.events.push_back(std::move(e));
  };
  for (const fault::FaultEvent* fe : model.activated(-1.0, 0.0)) {
    log_fault(fe->t_start, ExecEventType::kFaultInjected, *fe);
  }

  // Per-robot episode flags so the log carries state *transitions*, not
  // one entry per observer per tick.
  std::vector<char> suspected_logged(n, 0);
  std::vector<char> confirmed_logged(n, 0);
  std::vector<int> det_index(n, -1);

  double t = 0.0;
  bool was_connected = true;
  std::int64_t idle_streak = 0;
  // Longest possible detection cascade start-up: a pending crash turns
  // into visible activity (suspicion -> claim -> gather) within this many
  // ticks, so an idle streak past it means nothing is left to happen.
  const std::int64_t grace = opt_.suspicion_ticks + opt_.suspicion_jitter +
                             opt_.confirm_ticks + opt_.election_ticks +
                             opt_.gather_ticks + 2 * opt_.max_delay + 8;

  auto translate = [&](int actor, const LocalEvent& le) {
    const int j = le.subject;
    switch (le.kind) {
      case LocalEventKind::kSuspected: {
        ++report.suspicions;
        if (!suspected_logged[static_cast<std::size_t>(j)]) {
          suspected_logged[static_cast<std::size_t>(j)] = 1;
          log(t, ExecEventType::kPeerSuspected, j, le.detail);
          if (det_index[static_cast<std::size_t>(j)] >= 0) {
            CrashDetection& det =
                report.detections[static_cast<std::size_t>(
                    det_index[static_cast<std::size_t>(j)])];
            if (det.suspected_time < 0.0) det.suspected_time = t;
          }
        }
        break;
      }
      case LocalEventKind::kSuspicionCleared:
        if (suspected_logged[static_cast<std::size_t>(j)]) {
          suspected_logged[static_cast<std::size_t>(j)] = 0;
          log(t, ExecEventType::kSuspicionCleared, j, le.detail);
        }
        break;
      case LocalEventKind::kConfirmed: {
        if (confirmed_logged[static_cast<std::size_t>(j)]) break;
        confirmed_logged[static_cast<std::size_t>(j)] = 1;
        const bool truly = det_index[static_cast<std::size_t>(j)] >= 0;
        log(t, ExecEventType::kFaultDetected, j,
            (truly ? "crash-stop confirmed " : "false crash verdict ") +
                le.detail);
        if (truly) {
          ex.crashed.push_back(j);
          CrashDetection& det = report.detections[static_cast<std::size_t>(
              det_index[static_cast<std::size_t>(j)])];
          if (det.detected_time < 0.0) det.detected_time = t;
        }
        break;
      }
      case LocalEventKind::kElected: {
        ++report.elections;
        log(t, ExecEventType::kCoordinatorElected, actor,
            "for " + robot_detail(j) + "; " + le.detail);
        log(t, ExecEventType::kRecoveryStarted, actor,
            "gathering survivor timelines for " + robot_detail(j));
        if (det_index[static_cast<std::size_t>(j)] >= 0) {
          CrashDetection& det = report.detections[static_cast<std::size_t>(
              det_index[static_cast<std::size_t>(j)])];
          if (det.coordinator < 0) det.coordinator = actor;
        }
        break;
      }
      case LocalEventKind::kAbsorbDone: {
        ++report.absorbs;
        ++ex.recoveries;
        log(t, ExecEventType::kRecoveryFinished, -1, le.detail);
        if (det_index[static_cast<std::size_t>(j)] >= 0) {
          CrashDetection& det = report.detections[static_cast<std::size_t>(
              det_index[static_cast<std::size_t>(j)])];
          if (det.recovered_time < 0.0) det.recovered_time = t;
        }
        break;
      }
      case LocalEventKind::kAbsorbFailed:
        ex.degraded = true;
        log(t, ExecEventType::kDegraded, j,
            "absorb failed: " + le.detail);
        break;
      case LocalEventKind::kSpliced:
        // Motion-level consequence of a logged recovery; kept out of the
        // log to avoid one entry per survivor.
        break;
      case LocalEventKind::kIsolatedSelf:
        ++report.isolations;
        log(t, ExecEventType::kIsolated, actor, le.detail);
        break;
      case LocalEventKind::kRejoinedSelf:
        log(t, ExecEventType::kRejoined, actor, le.detail);
        break;
    }
  };

  // --- tick loop --------------------------------------------------------
  std::vector<std::vector<net::Message>> inboxes(n);
  std::int64_t tick = 0;
  for (;;) {
    ++tick;
    const double t_prev = t;
    t = static_cast<double>(tick) * dt;

    for (const fault::FaultEvent* fe : model.activated(t_prev, t)) {
      log_fault(fe->t_start, ExecEventType::kFaultInjected, *fe);
    }
    for (const fault::FaultEvent* fe : model.cleared(t_prev, t)) {
      log_fault(fe->t_end(), ExecEventType::kFaultCleared, *fe);
    }

    // Crash-stops: the plant kills the robot (motion + radio). Peers are
    // NOT told — they must notice via missed heartbeats.
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      const fault::RobotFaultState st =
          model.robot_state(static_cast<int>(i), t);
      if (st.crashed) {
        alive[i] = 0;
        det_index[i] = static_cast<int>(report.detections.size());
        CrashDetection det;
        det.robot = static_cast<int>(i);
        det.crash_time = st.crash_time;
        report.detections.push_back(det);
      }
    }

    // Inboxes were filled by the previous round's deliveries. Dead
    // radios drain to nowhere.
    for (std::size_t i = 0; i < n; ++i) {
      inboxes[i] = net.take_inbox(static_cast<int>(i));
      if (!alive[i]) inboxes[i].clear();
    }

    // Controllers step in id order (the event log's tiebreak), then the
    // plant applies actuation faults to what each controller wanted.
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      LocalController::StepResult res =
          ctrl[i].step(tick, std::move(inboxes[i]), net);
      const fault::RobotFaultState st =
          model.robot_state(static_cast<int>(i), t);
      const double max_rate =
          st.stuck ? 0.0
                   : (st.speed_factor >= 1.0 ? opt_.catch_up_factor
                                             : st.speed_factor);
      const double p_prev = ctrl[i].progress();
      const double achieved =
          p_prev + std::min(std::max(res.desired_progress - p_prev, 0.0),
                            dt * max_rate);
      const Vec2 next = ctrl[i].trajectory().position(achieved);
      ex.executed_distance += distance(pos[i], next);
      pos[i] = next;
      gps[i] = next + model.noise_offset(static_cast<int>(i), tick,
                                         st.noise_sigma);
      ctrl[i].observe_self(achieved, gps[i]);
      for (const LocalEvent& le : res.events) {
        translate(static_cast<int>(i), le);
      }
    }

    // Radio truth for the next round: unit-disk topology over the noisy
    // positions at the degraded range, dead radios removed. Scripted
    // link dropouts act at delivery time via the outage predicate.
    const double r_eff = r_c_ * model.range_factor(t);
    std::vector<std::vector<int>> adj = net::unit_disk_adjacency(gps, r_eff);
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) {
        adj[i].clear();
        continue;
      }
      adj[i].erase(std::remove_if(adj[i].begin(), adj[i].end(),
                                  [&alive](int v) {
                                    return !alive[static_cast<std::size_t>(v)];
                                  }),
                   adj[i].end());
    }
    net.update_topology(adj);
    net.deliver_round();

    // Observational C sample (reporting only, never control).
    const bool connected = alive_connected(adj, alive, model.dropped_links(t));
    if (!connected && was_connected) {
      ex.connected_throughout = false;
      if (ex.first_disconnect_time < 0.0) ex.first_disconnect_time = t;
      log(t, ExecEventType::kDisconnected, -1, "global connectivity lost");
    } else if (connected && !was_connected) {
      log(t, ExecEventType::kReconnected, -1, "global connectivity restored");
    }
    was_connected = connected;

    // Termination: every alive robot done and no election or gather in
    // flight, sustained for a full detection-cascade grace window.
    bool idle = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && (!ctrl[i].done() || ctrl[i].busy())) {
        idle = false;
        break;
      }
    }
    idle_streak = idle ? idle_streak + 1 : 0;
    if (idle && idle_streak >= grace) {
      log(t, ExecEventType::kCompleted, -1,
          "all alive robots reached their timeline ends");
      break;
    }
    if (t > max_wall) {
      ex.degraded = true;
      log(t, ExecEventType::kDegraded, -1, "wall budget exhausted");
      break;
    }
  }

  // --- final accounting -------------------------------------------------
  ex.end_time = t;
  ex.final_connected = was_connected;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    ex.survivors.push_back(static_cast<int>(i));
    ex.final_ids.push_back(static_cast<int>(i));
    ex.final_positions.push_back(pos[i]);
  }
  // Crashes nobody confirmed still count as crashed (detection order
  // first, then undetected in crash order).
  for (const CrashDetection& det : report.detections) {
    if (det.detected_time < 0.0) ex.crashed.push_back(det.robot);
  }
  ex.survival_rate =
      static_cast<double>(ex.survivors.size()) / static_cast<double>(n);
  ex.extra_distance = ex.executed_distance - ex.planned_distance;

  std::size_t initial_links = 0;
  std::size_t kept_links = 0;
  const double link_tol = r_c_ * (1.0 + 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!alive[j]) continue;
      if (distance(plan.trajectories[i].start(),
                   plan.trajectories[j].start()) > link_tol) {
        continue;
      }
      ++initial_links;
      if (distance(pos[i], pos[j]) <= link_tol) ++kept_links;
    }
  }
  ex.stable_link_ratio =
      initial_links == 0 ? 1.0
                         : static_cast<double>(kept_links) /
                               static_cast<double>(initial_links);

  report.rounds = net.rounds_elapsed();
  report.messages_sent = net.messages_sent();
  report.messages_delivered = net.messages_delivered();
  report.messages_lost = net.messages_lost();
  report.retransmissions = net.retransmissions();
  report.messages_expired = net.messages_expired();
  report.duplicates_suppressed = net.duplicates_suppressed();
  report.acks_sent = net.acks_sent();
  report.bytes_sent = net.bytes_sent();
  for (const LocalController& c : ctrl) {
    report.heartbeats += c.heartbeats_sent();
  }

  double det_sum = 0.0;
  int det_count = 0;
  double rec_sum = 0.0;
  int rec_count = 0;
  for (const CrashDetection& det : report.detections) {
    if (det.detected_time >= 0.0) {
      det_sum += det.detected_time - det.crash_time;
      ++det_count;
      if (det.recovered_time >= 0.0) {
        rec_sum += det.recovered_time - det.detected_time;
        ++rec_count;
      }
    }
  }
  report.mean_detection_latency =
      det_count > 0 ? det_sum / det_count : -1.0;
  report.mean_recovery_latency =
      rec_count > 0 ? rec_sum / rec_count : -1.0;

  // Batched instrumentation from the finished report: the tick loop runs
  // identically with or without a registry attached.
  obs::inc(ins_.runs);
  obs::inc(ins_.rounds, report.rounds);
  obs::inc(ins_.messages, report.messages_sent);
  obs::inc(ins_.bytes, report.bytes_sent);
  obs::inc(ins_.lost, report.messages_lost);
  obs::inc(ins_.retransmissions, report.retransmissions);
  obs::inc(ins_.heartbeats, report.heartbeats);
  obs::inc(ins_.suspicions, static_cast<std::uint64_t>(report.suspicions));
  obs::inc(ins_.isolations, static_cast<std::uint64_t>(report.isolations));
  obs::inc(ins_.elections, static_cast<std::uint64_t>(report.elections));
  obs::inc(ins_.absorbs, static_cast<std::uint64_t>(report.absorbs));
  for (const CrashDetection& det : report.detections) {
    if (det.detected_time >= 0.0) {
      obs::observe(ins_.detection_latency, det.detected_time - det.crash_time);
      if (det.recovered_time >= 0.0) {
        obs::observe(ins_.recovery_latency,
                     det.recovered_time - det.detected_time);
      }
    }
  }
  return report;
}

}  // namespace anr
