// Distributed rotation-angle search (paper Sec. III-B, faithful version).
//
// "At each step, a mobile robot divides current search interval of angle
// into two and rotates its mapped position in unit disk with the midpoint
// angle of the interval. The mobile robot computes its mapped position in
// M2 and exchanges the position with its one-range neighbors. After
// calculating its own stable link ratio, the mobile robot then floods the
// information to other mobile robots."
//
// Per probe: one position-exchange round over the communication links,
// then a network-wide flood summing the per-robot counts — every robot
// ends up knowing the probe's global objective and takes the same branch
// of the interval search. The message totals reported here are the real
// communication price of the paper's design (O(n*E) per probe).
#pragma once

#include <cstddef>
#include <functional>

#include "geom/vec2.h"
#include "harmonic/rotation_search.h"
#include "march/planner.h"

namespace anr {

struct DistributedRotationResult {
  double angle = 0.0;
  double value = 0.0;  ///< global objective at `angle` (L for method a,
                       ///< negative total displacement for method b)
  int evaluations = 0;
  std::size_t messages = 0;
  std::size_t rounds = 0;
};

/// Runs the search over the communication topology of `positions` with
/// range `r_c`. `map_targets(theta)` is each robot's locally computable
/// mapped position (every robot carries the M2 map, Sec. III-B).
DistributedRotationResult distributed_rotation_search(
    const std::function<std::vector<Vec2>(double)>& map_targets,
    const std::vector<Vec2>& positions, double r_c, MarchObjective objective,
    const RotationSearchOptions& opt = {});

}  // namespace anr
