// MarchPlanner: the paper's end-to-end pipeline (Sec. III).
//
//   1. extract the triangulation T from the robots' connectivity graph;
//   2. fill T's holes (if M1 had holes) and harmonic-map T to a unit disk;
//   3. grid + triangulate M2, fill its holes, harmonic-map it to a disk;
//   4. search the disk rotation maximizing predicted stable link ratio
//      (method a) or minimizing total displacement (method b);
//   5. interpolate each robot's target via barycentric coordinates
//      (Eqn. 1), snapping hole landings to the nearest grid point;
//   6. repair isolated robots/subgroups with parallel marches;
//   7. straight-line transition with hole detours (Eqn. 2);
//   8. minor local adjustment: connectivity-safe Lloyd toward the
//      centroidal Voronoi configuration (optionally density-weighted).
//
// Construction does all the M2-side precomputation (meshing, harmonic
// map, CVT sampling); plan() is then cheap per robot configuration and
// per M1–M2 separation (M2 is rigidly offset by `m2_offset`).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "coverage/density.h"
#include "coverage/grid_cvt.h"
#include "coverage/lloyd.h"
#include "coverage/local_voronoi.h"
#include "harmonic/disk_map.h"
#include "foi/foi.h"
#include "foi/foi_mesher.h"
#include "harmonic/composition.h"
#include "harmonic/rotation_search.h"
#include "march/repair.h"
#include "march/terrain_router.h"
#include "march/trajectory.h"
#include "mesh/mesh_quality.h"
#include "obs/metrics.h"

namespace anr {

/// Rotation-search objective: the paper's method (a) vs method (b).
enum class MarchObjective {
  kMaxStableLinks,  ///< method (a): maximize predicted stable link ratio
  kMinDistance,     ///< method (b): minimize total displacement
};

/// Triangulation-extraction strategy for T.
enum class ExtractionMode {
  kAuto,     ///< alpha extraction (centralized) or localized Delaunay
             ///< (distributed mode) — the defaults
  kGabriel,  ///< 1-hop Gabriel-graph extraction (sparser; ablation)
};

/// Minor-adjustment engine (paper Sec. III-C).
enum class AdjustmentEngine {
  kGridCvt,        ///< dense-sample discrete Voronoi (default; fast)
  kLocalVoronoi,   ///< per-robot two-hop clipped Voronoi — the paper's
                   ///< distributed formulation
};

struct PlannerOptions {
  MarchObjective objective = MarchObjective::kMaxStableLinks;
  RotationSearchOptions rotation;
  MesherOptions mesher;        ///< M2 grid resolution
  DiskMapOptions disk;         ///< harmonic-map weights / boundary spacing
  int cvt_samples = 24000;     ///< adjustment-phase CVT sampling
  LloydOptions adjust;         ///< minor-adjustment convergence
  int max_adjust_steps = 50;
  AdjustmentEngine adjustment = AdjustmentEngine::kGridCvt;
  ExtractionMode extraction = ExtractionMode::kAuto;
  /// Connectivity-safe stepping (Sec. III-D-1): halve moves that would
  /// split the network. Disable only for the ablation bench.
  bool safe_adjustment = true;
  double transition_time = 1.0;  ///< T of Eqn. (2)
  /// Use the message-passing protocols (boundary walk + distributed
  /// relaxation) for T's disk map instead of the centralized solver;
  /// slower, reports protocol costs.
  bool distributed = false;
  /// Exhaustive rotation sweep instead of the depth-limited search
  /// (ablation oracle).
  bool exhaustive_rotation = false;
  /// Scale on the triangulation-extraction radius. 1.0 is the paper's
  /// extraction at r_c; plan_robust() retries with a relaxed (larger)
  /// scale when extraction is too sparse to mesh the deployment.
  double alpha_scale = 1.0;
  /// Density for the adjustment CVT (defaults to uniform).
  DensityFn density;
  /// Step-7 motion model and terrain cost-field knobs. With
  /// kTerrainGeodesic over a uniform cost field the planner runs the
  /// unmodified straight-line pipeline (plans are byte-identical).
  TrajectoryOptions trajectory;
};

/// Everything a plan produced, for metrics and inspection.
struct MarchPlan {
  std::vector<Trajectory> trajectories;  ///< full timeline per robot
  std::vector<Vec2> start;
  std::vector<Vec2> mapped_targets;      ///< after rotation + repair
  std::vector<Vec2> final_positions;     ///< after minor adjustment

  double rotation_angle = 0.0;
  double rotation_objective = 0.0;
  int rotation_evaluations = 0;
  double predicted_link_ratio = 0.0;  ///< endpoint predictor at chosen angle

  int snapped_targets = 0;   ///< robots that landed in a hole / off-mesh
  int repaired_robots = 0;
  int repaired_subgroups = 0;
  int unmeshed_robots = 0;   ///< robots absent from T

  /// Largest distance between consecutive T-boundary robots at their
  /// mapped destinations. The paper's global-connectivity argument rests
  /// on the boundary ring staying a connected chain (Sec. III-D-1); this
  /// must stay <= r_c.
  double max_boundary_gap = 0.0;

  double transition_end = 0.0;  ///< time where adjustment begins
  double total_time = 0.0;
  int adjust_steps = 0;

  MeshStats t_stats;   ///< robot triangulation summary
  MeshStats m2_stats;  ///< M2 grid mesh summary
  std::size_t protocol_messages = 0;  ///< distributed-mode message total

  // Terrain-routing diagnostics (kTerrainGeodesic only; in-memory — not
  // part of the serialized plan, which stays byte-stable).
  int fmm_solves = 0;        ///< fast-marching solves run for this plan
  int fmm_goal_snapped = 0;  ///< targets snapped out of keep-out cells
  int fmm_fallbacks = 0;     ///< robots degraded to straight-line motion
};

/// Which attempt of the fallback chain produced a plan.
enum class PlanMode {
  kPrimary,            ///< the paper pipeline at the configured alpha scale
  kRelaxedExtraction,  ///< paper pipeline with a widened extraction radius
  kBaselineFallback,   ///< Hungarian baseline (no triangulation needed)
};

/// Stable lowercase name ("primary", ...).
const char* plan_mode_name(PlanMode mode);

/// One attempt of plan_robust()'s fallback chain.
struct PlanAttempt {
  PlanMode mode = PlanMode::kPrimary;
  bool succeeded = false;
  std::string error;  ///< empty when succeeded
};

/// Why and how a plan was degraded. `degraded` is false iff the primary
/// pipeline succeeded on the first attempt.
struct DegradationRecord {
  bool degraded = false;
  PlanMode mode = PlanMode::kPrimary;  ///< mode that produced the plan
  std::vector<PlanAttempt> attempts;   ///< in execution order
};

/// Typed result of plan_robust(): a status instead of an exception.
struct PlanOutcome {
  Status status;
  MarchPlan plan;  ///< valid iff status.ok()
  DegradationRecord degradation;

  bool ok() const { return status.ok(); }
};

/// Plans marches from M1 into (rigid translates of) the M2 shape.
class MarchPlanner {
 public:
  /// `m2_shape` is the target FoI geometry; plan() adds `m2_offset`.
  /// Throws ContractViolation on degenerate geometry.
  MarchPlanner(FieldOfInterest m1, FieldOfInterest m2_shape, double r_c,
               PlannerOptions options = {});

  /// Plans the march of robots at `positions` (inside M1) to the M2 shape
  /// translated by `m2_offset`.
  MarchPlan plan(const std::vector<Vec2>& positions, Vec2 m2_offset) const;

  /// Degraded-mode planning: primary pipeline, then relaxed alpha
  /// extraction, then the Hungarian baseline. Never throws — every
  /// failure (including input validation) comes back as a typed Status,
  /// and the degradation record lists each attempt.
  PlanOutcome plan_robust(const std::vector<Vec2>& positions,
                          Vec2 m2_offset) const;

  const FieldOfInterest& m1() const { return m1_; }
  const FieldOfInterest& m2_shape() const { return m2_; }
  double comm_range() const { return r_c_; }
  const PlannerOptions& options() const { return opt_; }

  /// Attaches a metrics registry: per-stage spans + latency histograms
  /// (anr_plan_stage_seconds{stage=...}), whole-plan latency, rotation
  /// probe / snapped-target / repair counters, and fallback-mode counters
  /// for plan_robust(). Pass nullptr (or an obs::NullRegistry) to detach.
  /// Not part of the cache fingerprint — observation never changes plan
  /// output. Call before sharing the planner across threads; plan() only
  /// reads the resolved handles.
  void set_observer(obs::Registry* registry);

 private:
  /// Metric handles resolved once by set_observer(); all null when
  /// unobserved, so each record site is one untaken branch.
  struct Instruments {
    obs::SpanRing* spans = nullptr;
    obs::Histogram* stage_extraction = nullptr;
    obs::Histogram* stage_harmonic = nullptr;
    obs::Histogram* stage_rotation = nullptr;
    obs::Histogram* stage_interpolation = nullptr;
    obs::Histogram* stage_adjustment = nullptr;
    obs::Histogram* stage_routing = nullptr;
    obs::Histogram* plan_seconds = nullptr;
    obs::Counter* plans = nullptr;
    obs::Counter* rotation_probes = nullptr;
    obs::Counter* snapped_targets = nullptr;
    obs::Counter* repaired_robots = nullptr;
    obs::Counter* fallback_relaxed = nullptr;
    obs::Counter* fallback_baseline = nullptr;
    obs::Counter* plans_degraded = nullptr;
    obs::Counter* harmonic_nonconverged = nullptr;
    obs::Counter* harmonic_multigrid = nullptr;
    obs::Counter* fmm_solves = nullptr;
    obs::Counter* fmm_goal_snapped = nullptr;
    obs::Counter* fmm_fb_blocked_start = nullptr;
    obs::Counter* fmm_fb_unreachable = nullptr;
    obs::Counter* fmm_fb_stuck_descent = nullptr;
    obs::Counter* fmm_fb_out_of_domain = nullptr;
    obs::Counter* fmm_fb_connectivity = nullptr;
  };

  /// The full pipeline with the extraction radius scaled by
  /// `alpha_scale`; plan() delegates here with opt_.alpha_scale.
  MarchPlan plan_impl(const std::vector<Vec2>& positions, Vec2 m2_offset,
                      double alpha_scale) const;

  FieldOfInterest m1_;
  FieldOfInterest m2_;
  double r_c_;
  PlannerOptions opt_;
  Instruments ins_;

  // M2-side precomputation (origin frame).
  FoiMesh m2_mesh_;
  std::unique_ptr<OverlapInterpolator> interpolator_;
  std::unique_ptr<GridCvt> cvt_;
  std::unique_ptr<LocalVoronoiLloyd> local_lloyd_;
  MeshStats m2_stats_;
};

}  // namespace anr
