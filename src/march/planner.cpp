#include "march/planner.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "baselines/hungarian_march.h"
#include "common/check.h"
#include "common/task_arena.h"
#include "harmonic/disk_map.h"
#include "harmonic/distributed_disk_map.h"
#include "march/distributed_rotation.h"
#include "march/metrics.h"
#include "march/triangulation_extract.h"
#include "mesh/boundary.h"
#include "mesh/hole_fill.h"
#include "net/connectivity.h"
#include "net/incremental_connectivity.h"
#include "net/unit_disk_graph.h"

namespace anr {

namespace {

// Compacts `mesh` to the vertices referenced by triangles. Returns the
// compact mesh and fills robot_to_compact (-1 for dropped vertices).
TriangleMesh compact_for_mapping(const TriangleMesh& mesh,
                                 std::vector<int>& robot_to_compact) {
  robot_to_compact.assign(mesh.num_vertices(), -1);
  std::vector<Vec2> verts;
  std::vector<Tri> tris;
  for (const Tri& t : mesh.triangles()) {
    Tri nt{};
    for (int k = 0; k < 3; ++k) {
      VertexId v = t[static_cast<std::size_t>(k)];
      int& slot = robot_to_compact[static_cast<std::size_t>(v)];
      if (slot < 0) {
        slot = static_cast<int>(verts.size());
        verts.push_back(mesh.position(v));
      }
      nt[static_cast<std::size_t>(k)] = slot;
    }
    tris.push_back(nt);
  }
  return TriangleMesh(std::move(verts), std::move(tris));
}

}  // namespace

MarchPlanner::MarchPlanner(FieldOfInterest m1, FieldOfInterest m2_shape,
                           double r_c, PlannerOptions options)
    : m1_(std::move(m1)),
      m2_(std::move(m2_shape)),
      r_c_(r_c),
      opt_(std::move(options)) {
  ANR_CHECK(r_c_ > 0.0);
  if (!opt_.density) opt_.density = uniform_density();

  m2_mesh_ = mesh_foi(m2_, opt_.mesher);
  m2_stats_ = mesh_stats(m2_mesh_.mesh);
  HoleFillResult filled = fill_holes(m2_mesh_.mesh);
  DiskMap disk = harmonic_disk_map(filled.mesh, opt_.disk);
  ANR_CHECK_MSG(disk.converged,
                "M2 harmonic map did not converge: " + disk.status.to_string());
  interpolator_ = std::make_unique<OverlapInterpolator>(filled, disk);
  cvt_ = std::make_unique<GridCvt>(m2_, opt_.density, opt_.cvt_samples);
  if (opt_.adjustment == AdjustmentEngine::kLocalVoronoi) {
    local_lloyd_ = std::make_unique<LocalVoronoiLloyd>(m2_, opt_.density, r_c_);
  }
}

void MarchPlanner::set_observer(obs::Registry* registry) {
  ins_ = Instruments{};
  if (registry == nullptr || !registry->enabled()) return;
  ins_.spans = registry->spans();
  auto stage = [&](const char* name) {
    return registry->histogram("anr_plan_stage_seconds", {{"stage", name}},
                               "per-stage planning latency");
  };
  ins_.stage_extraction = stage("extraction");
  ins_.stage_harmonic = stage("harmonic_map");
  ins_.stage_rotation = stage("rotation_search");
  ins_.stage_interpolation = stage("interpolation");
  ins_.stage_adjustment = stage("adjustment");
  ins_.plan_seconds =
      registry->histogram("anr_plan_seconds", {}, "end-to-end plan() latency");
  ins_.plans = registry->counter("anr_plans_total", {}, "plans produced");
  ins_.rotation_probes = registry->counter(
      "anr_rotation_probes_total", {}, "rotation-search objective probes");
  ins_.snapped_targets = registry->counter(
      "anr_plan_snapped_targets_total", {},
      "targets snapped off holes / off-mesh landings");
  ins_.repaired_robots = registry->counter(
      "anr_plan_repaired_robots_total", {},
      "robots rerouted by global-connectivity repair");
  ins_.fallback_relaxed = registry->counter(
      "anr_plan_fallbacks_total", {{"mode", "relaxed_extraction"}},
      "plan_robust fallback attempts that produced the plan");
  ins_.fallback_baseline = registry->counter(
      "anr_plan_fallbacks_total", {{"mode", "baseline_fallback"}},
      "plan_robust fallback attempts that produced the plan");
  ins_.plans_degraded = registry->counter(
      "anr_plans_degraded_total", {}, "plans produced by a fallback mode");
  ins_.harmonic_nonconverged = registry->counter(
      "anr_harmonic_nonconverged_total", {},
      "harmonic relaxations that exhausted their sweep budget");
  ins_.harmonic_multigrid = registry->counter(
      "anr_harmonic_multigrid_total", {},
      "harmonic relaxations solved by the multigrid engine");
}

const char* plan_mode_name(PlanMode mode) {
  switch (mode) {
    case PlanMode::kPrimary:
      return "primary";
    case PlanMode::kRelaxedExtraction:
      return "relaxed_extraction";
    case PlanMode::kBaselineFallback:
      return "baseline_fallback";
  }
  return "unknown";
}

MarchPlan MarchPlanner::plan(const std::vector<Vec2>& positions,
                             Vec2 m2_offset) const {
  return plan_impl(positions, m2_offset, opt_.alpha_scale);
}

MarchPlan MarchPlanner::plan_impl(const std::vector<Vec2>& positions,
                                  Vec2 m2_offset, double alpha_scale) const {
  const std::size_t n = positions.size();
  ANR_CHECK_MSG(n >= 4, "need at least 4 robots");

  // Whole-pipeline span; the stage spans below nest inside it. Recording
  // only reads clocks and bumps atomics — the plan bytes stay identical
  // with or without an observer.
  obs::Span plan_span(ins_.spans, "plan", ins_.plan_seconds);

  MarchPlan plan;
  plan.start = positions;
  plan.m2_stats = m2_stats_;
  plan.transition_end = opt_.transition_time;

  auto adjacency = net::unit_disk_adjacency(positions, r_c_);
  ANR_CHECK_MSG(net::is_connected(adjacency),
                "initial deployment is not connected");
  auto links = communication_links(positions, r_c_);

  // --- 1. Triangulation T -------------------------------------------------
  obs::Span ext_span(ins_.spans, "extraction", ins_.stage_extraction);
  const double r_ext = r_c_ * alpha_scale;
  ExtractionResult ext =
      opt_.extraction == ExtractionMode::kGabriel
          ? extract_triangulation_gabriel(positions, r_ext)
          : (opt_.distributed
                 ? extract_triangulation_distributed(positions, r_ext)
                 : extract_triangulation(positions, r_ext));
  plan.protocol_messages += ext.messages;
  plan.unmeshed_robots = static_cast<int>(ext.unmeshed.size());
  plan.t_stats = mesh_stats(ext.mesh);

  std::vector<int> robot_to_compact;
  TriangleMesh t_compact = compact_for_mapping(ext.mesh, robot_to_compact);
  ext_span.finish();

  // --- 2. Harmonic map of T (holes filled when M1 had holes) --------------
  obs::Span harm_span(ins_.spans, "harmonic_map", ins_.stage_harmonic);
  HoleFillResult t_filled = fill_holes(t_compact);
  DiskMap t_disk;
  if (opt_.distributed) {
    DistributedDiskMap dmap = distributed_harmonic_disk_map(t_filled.mesh);
    plan.protocol_messages += dmap.boundary_messages + dmap.relax_messages;
    t_disk = std::move(dmap.map);
  } else {
    t_disk = harmonic_disk_map(t_filled.mesh, opt_.disk);
  }
  if (t_disk.used_multigrid) obs::inc(ins_.harmonic_multigrid);
  if (!t_disk.converged) {
    // Surface the typed status instead of silently planning from a
    // half-relaxed map (the centralized path used to do exactly that);
    // plan_robust treats the throw as a degradation trigger.
    obs::inc(ins_.harmonic_nonconverged);
    ANR_CHECK_MSG(false, t_disk.status.to_string());
  }
  harm_span.finish();

  // Boundary robots: vertices of T's *outer* loop — they land on M2's rim.
  std::vector<char> is_boundary(n, 0);
  std::vector<int> outer_loop_robots;  // loop order, robot indices
  {
    auto loops = boundary_loops(t_compact);
    std::size_t outer = outer_loop_index(t_compact, loops);
    std::vector<char> compact_boundary(t_compact.num_vertices(), 0);
    std::vector<int> compact_to_robot(t_compact.num_vertices(), -1);
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) {
        compact_to_robot[static_cast<std::size_t>(robot_to_compact[r])] =
            static_cast<int>(r);
      }
    }
    for (VertexId v : loops[outer].vertices) {
      compact_boundary[static_cast<std::size_t>(v)] = 1;
      outer_loop_robots.push_back(compact_to_robot[static_cast<std::size_t>(v)]);
    }
    for (std::size_t r = 0; r < n; ++r) {
      int cv = robot_to_compact[r];
      if (cv >= 0 && compact_boundary[static_cast<std::size_t>(cv)]) {
        is_boundary[r] = 1;
      }
    }
  }

  // Unmeshed robots copy the march of their nearest meshed neighbor
  // (BFS over M1 links); precompute that anchor.
  std::vector<int> anchor(n, -1);
  {
    std::queue<int> q;
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) {
        anchor[r] = static_cast<int>(r);
        q.push(static_cast<int>(r));
      }
    }
    ANR_CHECK_MSG(!q.empty(), "triangulation extraction kept no robot");
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int u : adjacency[static_cast<std::size_t>(v)]) {
        if (anchor[static_cast<std::size_t>(u)] < 0) {
          anchor[static_cast<std::size_t>(u)] = anchor[static_cast<std::size_t>(v)];
          q.push(u);
        }
      }
    }
  }

  // --- 3./4. Rotation search over the overlapped disks --------------------
  // Meshed-robot gather: robot r participates in the disk overlay iff it
  // survived extraction; the rest copy their anchor's march afterward.
  std::vector<int> meshed;
  std::vector<Vec2> meshed_disk;
  meshed.reserve(n);
  meshed_disk.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    int cv = robot_to_compact[r];
    if (cv < 0) continue;
    meshed.push_back(static_cast<int>(r));
    meshed_disk.push_back(t_disk.disk_pos[static_cast<std::size_t>(cv)]);
  }

  // Per-evaluation scratch: the mapped/target buffers are reused across
  // rotation probes, and `hints` warm-starts the interpolator's point
  // location (a robot's disk position moves only slightly between probes,
  // so the previous hit triangle is almost always zero or one adjacency
  // step away). Hints affect lookup speed only, never results, so every
  // probe is a pure function of theta.
  struct MapScratch {
    std::vector<int> hints;
    std::vector<MappedTarget> mapped;
    std::vector<Vec2> q;
  };
  auto map_targets_into = [&](double theta, int* snapped, MapScratch& s) {
    interpolator_->map_all_into(meshed_disk, theta, s.hints, s.mapped);
    s.q.resize(n);
    int snaps = 0;
    for (std::size_t k = 0; k < meshed.size(); ++k) {
      std::size_t r = static_cast<std::size_t>(meshed[k]);
      s.q[r] = s.mapped[k].world + m2_offset;
      if (s.mapped[k].snapped) ++snaps;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) continue;
      int a = anchor[r];
      ANR_CHECK(a >= 0 && robot_to_compact[static_cast<std::size_t>(a)] >= 0);
      s.q[r] = positions[r] + (s.q[static_cast<std::size_t>(a)] -
                               positions[static_cast<std::size_t>(a)]);
    }
    if (snapped != nullptr) *snapped = snaps;
  };
  auto map_targets = [&](double theta) {
    MapScratch s;
    map_targets_into(theta, nullptr, s);
    return std::move(s.q);
  };

  // Distance-normalization scale for the stable-links tie-breaker below.
  // Chosen so that the across-theta *variation* of the displacement term
  // (at most ~n * FoI diameter) stays far below one preserved link
  // (1 / |links|).
  double diag = std::max(m1_.bbox().width() + m1_.bbox().height(), 1.0) *
                static_cast<double>(n) * 1e4;

  auto objective_value = [&](const std::vector<Vec2>& q) {
    if (opt_.objective == MarchObjective::kMaxStableLinks) {
      // The link ratio is quantized (k / |links|), so plateaus are common
      // and the interval search would pick among ties arbitrarily. Break
      // ties toward less displacement — too small to ever outvote a
      // single preserved link.
      return predicted_stable_link_ratio(positions, q, links, r_c_) -
             total_displacement(positions, q) / diag;
    }
    return -total_displacement(positions, q);
  };

  // Candidate angles of a probe round evaluate concurrently, each chunk
  // on its own scratch slot. Chunk boundaries here *may* follow the
  // thread count (unlike reduction merges) because values[k] is written
  // independently per candidate and probes are theta-pure — the round's
  // results are byte-identical at any parallelism. The interpolator's own
  // parallel batch nests inside this region and falls back to serial.
  std::vector<MapScratch> slots;
  auto batch_objective = [&](const std::vector<double>& thetas,
                             std::vector<double>& values) {
    values.resize(thetas.size());
    const std::size_t threads = static_cast<std::size_t>(arena_threads());
    const std::size_t grain = (thetas.size() + threads - 1) / threads;
    const std::size_t nchunks = (thetas.size() + grain - 1) / grain;
    if (slots.size() < nchunks) slots.resize(nchunks);
    parallel_chunks(thetas.size(), grain,
                    [&](std::size_t chunk, std::size_t begin,
                        std::size_t end) {
                      MapScratch& s = slots[chunk];
                      for (std::size_t k = begin; k < end; ++k) {
                        map_targets_into(thetas[k], nullptr, s);
                        values[k] = objective_value(s.q);
                      }
                    });
  };

  obs::Span rot_span(ins_.spans, "rotation_search", ins_.stage_rotation);
  RotationSearchResult rot;
  if (opt_.exhaustive_rotation) {
    rot = sweep_rotation(RotationBatchObjective(batch_objective));
  } else if (opt_.distributed) {
    // Faithful protocol: per-probe 1-hop exchange + network flood.
    DistributedRotationResult dr = distributed_rotation_search(
        map_targets, positions,
        r_c_, opt_.objective, opt_.rotation);
    plan.protocol_messages += dr.messages;
    rot.angle = dr.angle;
    rot.evaluations = dr.evaluations;
    // Method (a) floods preserved-link counts; normalize to the ratio the
    // centralized path reports.
    rot.value = opt_.objective == MarchObjective::kMaxStableLinks && !links.empty()
                    ? dr.value / static_cast<double>(links.size())
                    : dr.value;
  } else {
    rot = search_rotation(RotationBatchObjective(batch_objective),
                          opt_.rotation);
  }
  plan.rotation_angle = rot.angle;
  plan.rotation_objective = rot.value;
  plan.rotation_evaluations = rot.evaluations;
  rot_span.finish();
  if (rot.evaluations > 0) {
    obs::inc(ins_.rotation_probes, static_cast<std::uint64_t>(rot.evaluations));
  }

  // --- 5. Targets at the chosen rotation ----------------------------------
  obs::Span interp_span(ins_.spans, "interpolation", ins_.stage_interpolation);
  MapScratch final_map;
  map_targets_into(rot.angle, &plan.snapped_targets, final_map);
  std::vector<Vec2> targets = std::move(final_map.q);

  // Boundary-ring check-and-require (Sec. III-D-1): consecutive boundary
  // robots must stay within range at their destinations for the rim to
  // stay a connected chain. On strongly stretched M2 shapes the harmonic
  // map can leave a gap wider than r_c; in that case re-space the ring
  // uniformly by arc length along M2's outer boundary (keeping the
  // robots' cyclic order), which bounds every gap by perimeter/b.
  auto ring_gap = [&](const std::vector<Vec2>& q) {
    double gap = 0.0;
    for (std::size_t i = 0, b = outer_loop_robots.size(); i < b; ++i) {
      int u = outer_loop_robots[i];
      int v = outer_loop_robots[(i + 1) % b];
      gap = std::max(gap, distance(q[static_cast<std::size_t>(u)],
                                   q[static_cast<std::size_t>(v)]));
    }
    return gap;
  };
  plan.max_boundary_gap = ring_gap(targets);
  const std::size_t ring_size = outer_loop_robots.size();
  if (plan.max_boundary_gap > r_c_ && ring_size >= 3) {
    Polygon rim = m2_.outer().translated(m2_offset);
    double perimeter = rim.perimeter();
    // Walk direction: follow the majority orientation of the current
    // mapped ring along the rim.
    double s0 = rim.perimeter_param(
        targets[static_cast<std::size_t>(outer_loop_robots[0])]);
    double forward_votes = 0.0;
    double prev = s0;
    for (std::size_t i = 1; i < ring_size; ++i) {
      double s = rim.perimeter_param(
          targets[static_cast<std::size_t>(outer_loop_robots[i])]);
      double delta = std::fmod(s - prev + perimeter, perimeter);
      forward_votes += (delta <= perimeter / 2.0) ? 1.0 : -1.0;
      prev = s;
    }
    double dir = forward_votes >= 0.0 ? 1.0 : -1.0;
    for (std::size_t i = 0; i < ring_size; ++i) {
      double s = s0 + dir * static_cast<double>(i) * perimeter /
                          static_cast<double>(ring_size);
      targets[static_cast<std::size_t>(outer_loop_robots[i])] =
          rim.point_at_param(s);
    }
    plan.max_boundary_gap = ring_gap(targets);
  }

  // --- 6. Global-connectivity repair --------------------------------------
  RepairReport rep =
      repair_targets(positions, targets, adjacency, is_boundary, r_c_);
  plan.repaired_robots = rep.repaired;
  plan.repaired_subgroups = rep.subgroups;
  plan.mapped_targets = targets;
  plan.predicted_link_ratio =
      predicted_stable_link_ratio(positions, targets, links, r_c_);


  // --- 7. Transition trajectories (Eqn. 2 with hole detours) --------------
  std::vector<Polygon> obstacles = m1_.holes();
  for (const Polygon& h : m2_.holes()) {
    obstacles.push_back(h.translated(m2_offset));
  }
  plan.trajectories.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    plan.trajectories.push_back(make_timed_path(
        positions[r], targets[r], 0.0, opt_.transition_time, obstacles));
  }
  interp_span.finish();
  obs::inc(ins_.snapped_targets,
           static_cast<std::uint64_t>(plan.snapped_targets));
  obs::inc(ins_.repaired_robots,
           static_cast<std::uint64_t>(plan.repaired_robots));

  // --- 8. Minor local adjustment: connectivity-safe Lloyd -----------------
  obs::Span adjust_span(ins_.spans, "adjustment", ins_.stage_adjustment);
  // Reference speed: fastest robot during the transition; adjustment steps
  // take time proportional to their largest move at that speed.
  double max_disp = 1e-9;
  for (std::size_t r = 0; r < n; ++r) {
    max_disp = std::max(max_disp, distance(positions[r], targets[r]));
  }
  double speed_ref = max_disp / opt_.transition_time;

  std::vector<Vec2> cur = targets;
  double t = opt_.transition_time;
  std::vector<Polygon> m2_obstacles;
  for (const Polygon& h : m2_.holes()) {
    m2_obstacles.push_back(h.translated(m2_offset));
  }
  // Loop-persistent scratch: one incremental connectivity checker serves
  // every trial probe (halved retries reuse its spatial index — their
  // bounded displacement rarely changes any link state, and an unchanged
  // edge set skips the BFS outright); the CVT scratch keeps the site index
  // and accumulators alive across Lloyd steps.
  net::IncrementalConnectivity connectivity(r_c_);
  GridCvt::Scratch cvt_scratch;
  std::vector<Vec2> local(n), cents, cand(n), trial(n);
  for (int step = 0; step < opt_.max_adjust_steps; ++step) {
    // Centroids in the origin frame of the precomputed engine.
    for (std::size_t r = 0; r < n; ++r) local[r] = cur[r] - m2_offset;
    if (opt_.adjustment == AdjustmentEngine::kLocalVoronoi) {
      cents = local_lloyd_->step(local).centroids;
    } else {
      cvt_->centroids_into(local, cvt_scratch, cents);
    }
    for (std::size_t r = 0; r < n; ++r) cand[r] = cents[r] + m2_offset;

    // Connectivity-safe step: try the full move; halve collectively while
    // the trial configuration would split the network (Sec. III-D-1).
    double factor = 1.0;
    bool ok = false;
    int max_halvings = opt_.safe_adjustment ? 7 : 1;
    for (int halving = 0; halving < max_halvings; ++halving) {
      for (std::size_t r = 0; r < n; ++r) {
        trial[r] = lerp(cur[r], cand[r], factor);
      }
      if (!opt_.safe_adjustment || connectivity.check(trial)) {
        ok = true;
        break;
      }
      factor /= 2.0;
    }
    if (!ok) break;  // no safe move at all: stay put

    double max_move = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      max_move = std::max(max_move, distance(trial[r], cur[r]));
    }
    if (max_move <= opt_.adjust.tol) {
      cur = trial;
      ++plan.adjust_steps;
      break;
    }
    double dt = std::max(max_move / speed_ref, 1e-6);
    for (std::size_t r = 0; r < n; ++r) {
      Trajectory seg =
          make_timed_path(cur[r], trial[r], t, t + dt, m2_obstacles);
      // Append the step's waypoints, skipping the duplicated start point.
      for (std::size_t w = 1; w < seg.num_waypoints(); ++w) {
        plan.trajectories[r].append(seg.waypoints()[w], seg.times()[w]);
      }
    }
    cur = trial;
    t += dt;
    ++plan.adjust_steps;
  }

  adjust_span.finish();

  plan.final_positions = cur;
  plan.total_time = t;
  obs::inc(ins_.plans);
  return plan;
}

PlanOutcome MarchPlanner::plan_robust(const std::vector<Vec2>& positions,
                                      Vec2 m2_offset) const {
  PlanOutcome out;
  if (positions.empty()) {
    out.status = Status::InvalidArgument("no robots to plan for");
    return out;
  }
  for (std::size_t r = 0; r < positions.size(); ++r) {
    if (!std::isfinite(positions[r].x) || !std::isfinite(positions[r].y)) {
      out.status = Status::InvalidArgument(
          "non-finite position for robot " + std::to_string(r));
      return out;
    }
  }
  if (!std::isfinite(m2_offset.x) || !std::isfinite(m2_offset.y)) {
    out.status = Status::InvalidArgument("non-finite m2 offset");
    return out;
  }

  // Widening the extraction radius keeps more Delaunay edges, so sparse
  // but connected deployments that the paper's alpha cut refuses to mesh
  // get a second chance before we give up on the pipeline entirely.
  constexpr double kRelaxedBoost = 1.25;
  auto attempt = [&](PlanMode mode, auto&& make_plan) {
    PlanAttempt a;
    a.mode = mode;
    try {
      MarchPlan plan = make_plan();
      a.succeeded = true;
      out.degradation.attempts.push_back(std::move(a));
      out.degradation.mode = mode;
      out.degradation.degraded = mode != PlanMode::kPrimary;
      if (out.degradation.degraded) {
        obs::inc(ins_.plans_degraded);
        obs::inc(mode == PlanMode::kRelaxedExtraction ? ins_.fallback_relaxed
                                                      : ins_.fallback_baseline);
      }
      out.plan = std::move(plan);
      return true;
    } catch (const std::exception& e) {
      a.error = e.what();
      out.degradation.attempts.push_back(std::move(a));
      return false;
    }
  };

  if (attempt(PlanMode::kPrimary, [&] {
        return plan_impl(positions, m2_offset, opt_.alpha_scale);
      })) {
    return out;
  }
  if (attempt(PlanMode::kRelaxedExtraction, [&] {
        return plan_impl(positions, m2_offset,
                         opt_.alpha_scale * kRelaxedBoost);
      })) {
    return out;
  }
  if (attempt(PlanMode::kBaselineFallback, [&] {
        BaselineOptions base;
        base.transition_time = opt_.transition_time;
        HungarianMarchPlanner hungarian(
            m1_, m2_, r_c_, static_cast<int>(positions.size()), base);
        return hungarian.plan(positions, m2_offset);
      })) {
    return out;
  }

  std::string why = "all planning modes failed:";
  for (const PlanAttempt& a : out.degradation.attempts) {
    why += std::string(" [") + plan_mode_name(a.mode) + ": " + a.error + "]";
  }
  out.degradation.degraded = true;
  out.status = Status::Internal(why);
  return out;
}

}  // namespace anr
