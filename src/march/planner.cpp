#include "march/planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "baselines/hungarian_march.h"
#include "common/check.h"
#include "common/task_arena.h"
#include "harmonic/disk_map.h"
#include "harmonic/distributed_disk_map.h"
#include "march/distributed_rotation.h"
#include "march/metrics.h"
#include "march/triangulation_extract.h"
#include "mesh/boundary.h"
#include "mesh/hole_fill.h"
#include "net/connectivity.h"
#include "net/incremental_connectivity.h"
#include "net/unit_disk_graph.h"

namespace anr {

namespace {

// Compacts `mesh` to the vertices referenced by triangles. Returns the
// compact mesh and fills robot_to_compact (-1 for dropped vertices).
TriangleMesh compact_for_mapping(const TriangleMesh& mesh,
                                 std::vector<int>& robot_to_compact) {
  robot_to_compact.assign(mesh.num_vertices(), -1);
  std::vector<Vec2> verts;
  std::vector<Tri> tris;
  for (const Tri& t : mesh.triangles()) {
    Tri nt{};
    for (int k = 0; k < 3; ++k) {
      VertexId v = t[static_cast<std::size_t>(k)];
      int& slot = robot_to_compact[static_cast<std::size_t>(v)];
      if (slot < 0) {
        slot = static_cast<int>(verts.size());
        verts.push_back(mesh.position(v));
      }
      nt[static_cast<std::size_t>(k)] = slot;
    }
    tris.push_back(nt);
  }
  return TriangleMesh(std::move(verts), std::move(tris));
}

}  // namespace

MarchPlanner::MarchPlanner(FieldOfInterest m1, FieldOfInterest m2_shape,
                           double r_c, PlannerOptions options)
    : m1_(std::move(m1)),
      m2_(std::move(m2_shape)),
      r_c_(r_c),
      opt_(std::move(options)) {
  ANR_CHECK(r_c_ > 0.0);
  if (!opt_.density) opt_.density = uniform_density();

  m2_mesh_ = mesh_foi(m2_, opt_.mesher);
  m2_stats_ = mesh_stats(m2_mesh_.mesh);
  HoleFillResult filled = fill_holes(m2_mesh_.mesh);
  DiskMap disk = harmonic_disk_map(filled.mesh, opt_.disk);
  ANR_CHECK_MSG(disk.converged,
                "M2 harmonic map did not converge: " + disk.status.to_string());
  interpolator_ = std::make_unique<OverlapInterpolator>(filled, disk);
  cvt_ = std::make_unique<GridCvt>(m2_, opt_.density, opt_.cvt_samples);
  if (opt_.adjustment == AdjustmentEngine::kLocalVoronoi) {
    local_lloyd_ = std::make_unique<LocalVoronoiLloyd>(m2_, opt_.density, r_c_);
  }
}

void MarchPlanner::set_observer(obs::Registry* registry) {
  ins_ = Instruments{};
  if (registry == nullptr || !registry->enabled()) return;
  ins_.spans = registry->spans();
  auto stage = [&](const char* name) {
    return registry->histogram("anr_plan_stage_seconds", {{"stage", name}},
                               "per-stage planning latency");
  };
  ins_.stage_extraction = stage("extraction");
  ins_.stage_harmonic = stage("harmonic_map");
  ins_.stage_rotation = stage("rotation_search");
  ins_.stage_interpolation = stage("interpolation");
  ins_.stage_adjustment = stage("adjustment");
  ins_.stage_routing = stage("terrain_routing");
  ins_.plan_seconds =
      registry->histogram("anr_plan_seconds", {}, "end-to-end plan() latency");
  ins_.plans = registry->counter("anr_plans_total", {}, "plans produced");
  ins_.rotation_probes = registry->counter(
      "anr_rotation_probes_total", {}, "rotation-search objective probes");
  ins_.snapped_targets = registry->counter(
      "anr_plan_snapped_targets_total", {},
      "targets snapped off holes / off-mesh landings");
  ins_.repaired_robots = registry->counter(
      "anr_plan_repaired_robots_total", {},
      "robots rerouted by global-connectivity repair");
  ins_.fallback_relaxed = registry->counter(
      "anr_plan_fallbacks_total", {{"mode", "relaxed_extraction"}},
      "plan_robust fallback attempts that produced the plan");
  ins_.fallback_baseline = registry->counter(
      "anr_plan_fallbacks_total", {{"mode", "baseline_fallback"}},
      "plan_robust fallback attempts that produced the plan");
  ins_.plans_degraded = registry->counter(
      "anr_plans_degraded_total", {}, "plans produced by a fallback mode");
  ins_.harmonic_nonconverged = registry->counter(
      "anr_harmonic_nonconverged_total", {},
      "harmonic relaxations that exhausted their sweep budget");
  ins_.harmonic_multigrid = registry->counter(
      "anr_harmonic_multigrid_total", {},
      "harmonic relaxations solved by the multigrid engine");
  ins_.fmm_solves = registry->counter(
      "anr_fmm_solves_total", {}, "per-robot fast-marching ToA solves");
  ins_.fmm_goal_snapped = registry->counter(
      "anr_fmm_goal_snapped_total", {},
      "targets snapped out of keep-out cells");
  auto fmm_fallback = [&](const char* reason) {
    return registry->counter(
        "anr_fmm_fallbacks_total", {{"reason", reason}},
        "geodesic routes degraded to straight-line motion");
  };
  ins_.fmm_fb_blocked_start = fmm_fallback("blocked_start");
  ins_.fmm_fb_unreachable = fmm_fallback("unreachable");
  ins_.fmm_fb_stuck_descent = fmm_fallback("stuck_descent");
  ins_.fmm_fb_out_of_domain = fmm_fallback("out_of_domain");
  ins_.fmm_fb_connectivity = fmm_fallback("connectivity");
}

const char* plan_mode_name(PlanMode mode) {
  switch (mode) {
    case PlanMode::kPrimary:
      return "primary";
    case PlanMode::kRelaxedExtraction:
      return "relaxed_extraction";
    case PlanMode::kBaselineFallback:
      return "baseline_fallback";
  }
  return "unknown";
}

MarchPlan MarchPlanner::plan(const std::vector<Vec2>& positions,
                             Vec2 m2_offset) const {
  return plan_impl(positions, m2_offset, opt_.alpha_scale);
}

MarchPlan MarchPlanner::plan_impl(const std::vector<Vec2>& positions,
                                  Vec2 m2_offset, double alpha_scale) const {
  const std::size_t n = positions.size();
  ANR_CHECK_MSG(n >= 4, "need at least 4 robots");

  // Whole-pipeline span; the stage spans below nest inside it. Recording
  // only reads clocks and bumps atomics — the plan bytes stay identical
  // with or without an observer.
  obs::Span plan_span(ins_.spans, "plan", ins_.plan_seconds);

  MarchPlan plan;
  plan.start = positions;
  plan.m2_stats = m2_stats_;
  plan.transition_end = opt_.transition_time;

  auto adjacency = net::unit_disk_adjacency(positions, r_c_);
  ANR_CHECK_MSG(net::is_connected(adjacency),
                "initial deployment is not connected");
  auto links = communication_links(positions, r_c_);

  // --- 0. Terrain routing precomputation (ROADMAP item 3) ----------------
  // One fast-marching ToA solve per robot start; rotation probes then read
  // travel times by bilinear sampling instead of re-solving. A uniform
  // cost field routes, times, and costs exactly like straight-line
  // motion, so the planner bypasses the router entirely in that case —
  // uniform-field kTerrainGeodesic plans are byte-identical to kStraight
  // plans by construction.
  std::unique_ptr<TerrainRouter> router;
  if (opt_.trajectory.motion == MotionModel::kTerrainGeodesic) {
    obs::Span route_span(ins_.spans, "terrain_routing", ins_.stage_routing);
    BBox domain = m1_.bbox();
    const BBox m2_box = m2_.bbox();
    domain.expand(m2_box.lo + m2_offset);
    domain.expand(m2_box.hi + m2_offset);
    // Repair parallel-marches may target M1 translated by the full march
    // offset; cover that band so their goals stay inside the field.
    domain.expand(m1_.bbox().lo + m2_offset);
    domain.expand(m1_.bbox().hi + m2_offset);
    for (Vec2 p : positions) domain.expand(p);
    router = std::make_unique<TerrainRouter>(opt_.trajectory, domain, r_c_);
    router->solve(positions);
    route_span.finish();
  }
  const bool terrain_active = router != nullptr && !router->uniform();

  // --- 1. Triangulation T -------------------------------------------------
  obs::Span ext_span(ins_.spans, "extraction", ins_.stage_extraction);
  const double r_ext = r_c_ * alpha_scale;
  ExtractionResult ext =
      opt_.extraction == ExtractionMode::kGabriel
          ? extract_triangulation_gabriel(positions, r_ext)
          : (opt_.distributed
                 ? extract_triangulation_distributed(positions, r_ext)
                 : extract_triangulation(positions, r_ext));
  plan.protocol_messages += ext.messages;
  plan.unmeshed_robots = static_cast<int>(ext.unmeshed.size());
  plan.t_stats = mesh_stats(ext.mesh);

  std::vector<int> robot_to_compact;
  TriangleMesh t_compact = compact_for_mapping(ext.mesh, robot_to_compact);
  ext_span.finish();

  // --- 2. Harmonic map of T (holes filled when M1 had holes) --------------
  obs::Span harm_span(ins_.spans, "harmonic_map", ins_.stage_harmonic);
  HoleFillResult t_filled = fill_holes(t_compact);
  DiskMap t_disk;
  if (opt_.distributed) {
    DistributedDiskMap dmap = distributed_harmonic_disk_map(t_filled.mesh);
    plan.protocol_messages += dmap.boundary_messages + dmap.relax_messages;
    t_disk = std::move(dmap.map);
  } else {
    t_disk = harmonic_disk_map(t_filled.mesh, opt_.disk);
  }
  if (t_disk.used_multigrid) obs::inc(ins_.harmonic_multigrid);
  if (!t_disk.converged) {
    // Surface the typed status instead of silently planning from a
    // half-relaxed map (the centralized path used to do exactly that);
    // plan_robust treats the throw as a degradation trigger.
    obs::inc(ins_.harmonic_nonconverged);
    ANR_CHECK_MSG(false, t_disk.status.to_string());
  }
  harm_span.finish();

  // Boundary robots: vertices of T's *outer* loop — they land on M2's rim.
  std::vector<char> is_boundary(n, 0);
  std::vector<int> outer_loop_robots;  // loop order, robot indices
  {
    auto loops = boundary_loops(t_compact);
    std::size_t outer = outer_loop_index(t_compact, loops);
    std::vector<char> compact_boundary(t_compact.num_vertices(), 0);
    std::vector<int> compact_to_robot(t_compact.num_vertices(), -1);
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) {
        compact_to_robot[static_cast<std::size_t>(robot_to_compact[r])] =
            static_cast<int>(r);
      }
    }
    for (VertexId v : loops[outer].vertices) {
      compact_boundary[static_cast<std::size_t>(v)] = 1;
      outer_loop_robots.push_back(compact_to_robot[static_cast<std::size_t>(v)]);
    }
    for (std::size_t r = 0; r < n; ++r) {
      int cv = robot_to_compact[r];
      if (cv >= 0 && compact_boundary[static_cast<std::size_t>(cv)]) {
        is_boundary[r] = 1;
      }
    }
  }

  // Unmeshed robots copy the march of their nearest meshed neighbor
  // (BFS over M1 links); precompute that anchor.
  std::vector<int> anchor(n, -1);
  {
    std::queue<int> q;
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) {
        anchor[r] = static_cast<int>(r);
        q.push(static_cast<int>(r));
      }
    }
    ANR_CHECK_MSG(!q.empty(), "triangulation extraction kept no robot");
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int u : adjacency[static_cast<std::size_t>(v)]) {
        if (anchor[static_cast<std::size_t>(u)] < 0) {
          anchor[static_cast<std::size_t>(u)] = anchor[static_cast<std::size_t>(v)];
          q.push(u);
        }
      }
    }
  }

  // --- 3./4. Rotation search over the overlapped disks --------------------
  // Meshed-robot gather: robot r participates in the disk overlay iff it
  // survived extraction; the rest copy their anchor's march afterward.
  std::vector<int> meshed;
  std::vector<Vec2> meshed_disk;
  meshed.reserve(n);
  meshed_disk.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    int cv = robot_to_compact[r];
    if (cv < 0) continue;
    meshed.push_back(static_cast<int>(r));
    meshed_disk.push_back(t_disk.disk_pos[static_cast<std::size_t>(cv)]);
  }

  // Per-evaluation scratch: the mapped/target buffers are reused across
  // rotation probes, and `hints` warm-starts the interpolator's point
  // location (a robot's disk position moves only slightly between probes,
  // so the previous hit triangle is almost always zero or one adjacency
  // step away). Hints affect lookup speed only, never results, so every
  // probe is a pure function of theta.
  struct MapScratch {
    std::vector<int> hints;
    std::vector<MappedTarget> mapped;
    std::vector<Vec2> q;
    std::vector<double> lens;  ///< geodesic path-length bounds per robot
  };
  auto map_targets_into = [&](double theta, int* snapped, MapScratch& s) {
    interpolator_->map_all_into(meshed_disk, theta, s.hints, s.mapped);
    s.q.resize(n);
    int snaps = 0;
    for (std::size_t k = 0; k < meshed.size(); ++k) {
      std::size_t r = static_cast<std::size_t>(meshed[k]);
      s.q[r] = s.mapped[k].world + m2_offset;
      if (s.mapped[k].snapped) ++snaps;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) continue;
      int a = anchor[r];
      ANR_CHECK(a >= 0 && robot_to_compact[static_cast<std::size_t>(a)] >= 0);
      s.q[r] = positions[r] + (s.q[static_cast<std::size_t>(a)] -
                               positions[static_cast<std::size_t>(a)]);
    }
    if (snapped != nullptr) *snapped = snaps;
  };
  auto map_targets = [&](double theta) {
    MapScratch s;
    map_targets_into(theta, nullptr, s);
    return std::move(s.q);
  };

  // Distance-normalization scale for the stable-links tie-breaker below.
  // Chosen so that the across-theta *variation* of the displacement term
  // (at most ~n * FoI diameter) stays far below one preserved link
  // (1 / |links|).
  double diag = std::max(m1_.bbox().width() + m1_.bbox().height(), 1.0) *
                static_cast<double>(n) * 1e4;

  // Under terrain routing, method (a) predicts link survival from the
  // geodesic path-length bounds (curved paths deviate from the chord) and
  // method (b) / the tie-breaker minimize cost-metric travel time instead
  // of Euclidean displacement, so the rotation search optimizes L and D
  // under realistic motion.
  auto motion_cost = [&](const std::vector<Vec2>& q) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += router->travel_time(static_cast<int>(r), q[r]);
    }
    return total;
  };
  auto path_bounds_into = [&](const std::vector<Vec2>& q,
                              std::vector<double>& lens) {
    lens.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      lens[r] = router->path_length_bound(static_cast<int>(r), q[r]);
    }
  };
  auto objective_value = [&](const std::vector<Vec2>& q,
                             std::vector<double>& lens) {
    if (opt_.objective == MarchObjective::kMaxStableLinks) {
      // The link ratio is quantized (k / |links|), so plateaus are common
      // and the interval search would pick among ties arbitrarily. Break
      // ties toward less displacement — too small to ever outvote a
      // single preserved link.
      double ratio;
      if (terrain_active) {
        path_bounds_into(q, lens);
        ratio =
            predicted_stable_link_ratio_bounded(positions, q, lens, links, r_c_);
      } else {
        ratio = predicted_stable_link_ratio(positions, q, links, r_c_);
      }
      const double disp = terrain_active ? motion_cost(q)
                                         : total_displacement(positions, q);
      return ratio - disp / diag;
    }
    return -(terrain_active ? motion_cost(q)
                            : total_displacement(positions, q));
  };

  // Candidate angles of a probe round evaluate concurrently, each chunk
  // on its own scratch slot. Chunk boundaries here *may* follow the
  // thread count (unlike reduction merges) because values[k] is written
  // independently per candidate and probes are theta-pure — the round's
  // results are byte-identical at any parallelism. The interpolator's own
  // parallel batch nests inside this region and falls back to serial.
  std::vector<MapScratch> slots;
  auto batch_objective = [&](const std::vector<double>& thetas,
                             std::vector<double>& values) {
    values.resize(thetas.size());
    const std::size_t threads = static_cast<std::size_t>(arena_threads());
    const std::size_t grain = (thetas.size() + threads - 1) / threads;
    const std::size_t nchunks = (thetas.size() + grain - 1) / grain;
    if (slots.size() < nchunks) slots.resize(nchunks);
    parallel_chunks(thetas.size(), grain,
                    [&](std::size_t chunk, std::size_t begin,
                        std::size_t end) {
                      MapScratch& s = slots[chunk];
                      for (std::size_t k = begin; k < end; ++k) {
                        map_targets_into(thetas[k], nullptr, s);
                        values[k] = objective_value(s.q, s.lens);
                      }
                    });
  };

  obs::Span rot_span(ins_.spans, "rotation_search", ins_.stage_rotation);
  RotationSearchResult rot;
  if (opt_.exhaustive_rotation) {
    rot = sweep_rotation(RotationBatchObjective(batch_objective));
  } else if (opt_.distributed) {
    // Faithful protocol: per-probe 1-hop exchange + network flood.
    DistributedRotationResult dr = distributed_rotation_search(
        map_targets, positions,
        r_c_, opt_.objective, opt_.rotation);
    plan.protocol_messages += dr.messages;
    rot.angle = dr.angle;
    rot.evaluations = dr.evaluations;
    // Method (a) floods preserved-link counts; normalize to the ratio the
    // centralized path reports.
    rot.value = opt_.objective == MarchObjective::kMaxStableLinks && !links.empty()
                    ? dr.value / static_cast<double>(links.size())
                    : dr.value;
  } else {
    rot = search_rotation(RotationBatchObjective(batch_objective),
                          opt_.rotation);
  }
  plan.rotation_angle = rot.angle;
  plan.rotation_objective = rot.value;
  plan.rotation_evaluations = rot.evaluations;
  rot_span.finish();
  if (rot.evaluations > 0) {
    obs::inc(ins_.rotation_probes, static_cast<std::uint64_t>(rot.evaluations));
  }

  // --- 5. Targets at the chosen rotation ----------------------------------
  obs::Span interp_span(ins_.spans, "interpolation", ins_.stage_interpolation);
  MapScratch final_map;
  map_targets_into(rot.angle, &plan.snapped_targets, final_map);
  std::vector<Vec2> targets = std::move(final_map.q);

  // Boundary-ring check-and-require (Sec. III-D-1): consecutive boundary
  // robots must stay within range at their destinations for the rim to
  // stay a connected chain. On strongly stretched M2 shapes the harmonic
  // map can leave a gap wider than r_c; in that case re-space the ring
  // uniformly by arc length along M2's outer boundary (keeping the
  // robots' cyclic order), which bounds every gap by perimeter/b.
  auto ring_gap = [&](const std::vector<Vec2>& q) {
    double gap = 0.0;
    for (std::size_t i = 0, b = outer_loop_robots.size(); i < b; ++i) {
      int u = outer_loop_robots[i];
      int v = outer_loop_robots[(i + 1) % b];
      gap = std::max(gap, distance(q[static_cast<std::size_t>(u)],
                                   q[static_cast<std::size_t>(v)]));
    }
    return gap;
  };
  plan.max_boundary_gap = ring_gap(targets);
  const std::size_t ring_size = outer_loop_robots.size();
  if (plan.max_boundary_gap > r_c_ && ring_size >= 3) {
    Polygon rim = m2_.outer().translated(m2_offset);
    double perimeter = rim.perimeter();
    // Walk direction: follow the majority orientation of the current
    // mapped ring along the rim.
    double s0 = rim.perimeter_param(
        targets[static_cast<std::size_t>(outer_loop_robots[0])]);
    double forward_votes = 0.0;
    double prev = s0;
    for (std::size_t i = 1; i < ring_size; ++i) {
      double s = rim.perimeter_param(
          targets[static_cast<std::size_t>(outer_loop_robots[i])]);
      double delta = std::fmod(s - prev + perimeter, perimeter);
      forward_votes += (delta <= perimeter / 2.0) ? 1.0 : -1.0;
      prev = s;
    }
    double dir = forward_votes >= 0.0 ? 1.0 : -1.0;
    for (std::size_t i = 0; i < ring_size; ++i) {
      double s = s0 + dir * static_cast<double>(i) * perimeter /
                          static_cast<double>(ring_size);
      targets[static_cast<std::size_t>(outer_loop_robots[i])] =
          rim.point_at_param(s);
    }
    plan.max_boundary_gap = ring_gap(targets);
  }

  // --- 6. Global-connectivity repair --------------------------------------
  RepairReport rep =
      repair_targets(positions, targets, adjacency, is_boundary, r_c_);
  plan.repaired_robots = rep.repaired;
  plan.repaired_subgroups = rep.subgroups;

  // Repair parallel-marches can sling targets past every box the router's
  // domain was built from. Rather than degrading those robots to straight
  // chords (which would bypass keep-out enforcement), grow the field to
  // cover all final targets and re-solve — rare, and one extra solve pass.
  int prior_fmm_solves = 0;
  if (terrain_active) {
    bool out_of_field = false;
    for (std::size_t r = 0; r < n && !out_of_field; ++r) {
      out_of_field = !router->field().contains(targets[r]);
    }
    if (out_of_field) {
      obs::Span regrow_span(ins_.spans, "terrain_routing", ins_.stage_routing);
      prior_fmm_solves = router->stats().solves;
      BBox grown = router->field().bounds();
      for (Vec2 g : targets) grown.expand(g);
      router = std::make_unique<TerrainRouter>(opt_.trajectory, grown, r_c_);
      router->solve(positions);
    }
  }

  // Keep-out enforcement: no robot may be *sent* into a blocked cell.
  // Repair / ring re-spacing can land targets there; snap each to the
  // nearest unblocked cell center (deterministic ring scan).
  if (terrain_active && router->field().has_blocked()) {
    for (std::size_t r = 0; r < n; ++r) {
      bool snapped = false;
      targets[r] = router->unblocked_target(targets[r], &snapped);
      if (snapped) ++plan.fmm_goal_snapped;
    }
    if (plan.fmm_goal_snapped > 0) plan.max_boundary_gap = ring_gap(targets);
  }

  plan.mapped_targets = targets;
  if (terrain_active) {
    std::vector<double> lens;
    path_bounds_into(targets, lens);
    plan.predicted_link_ratio = predicted_stable_link_ratio_bounded(
        positions, targets, lens, links, r_c_);
  } else {
    plan.predicted_link_ratio =
        predicted_stable_link_ratio(positions, targets, links, r_c_);
  }


  // --- 7. Transition trajectories (Eqn. 2 with hole detours) --------------
  std::vector<Polygon> obstacles = m1_.holes();
  for (const Polygon& h : m2_.holes()) {
    obstacles.push_back(h.translated(m2_offset));
  }
  // Keep-out polygons join the obstacle set for straight chords under
  // terrain routing (fallbacks and connectivity straightenings): a
  // degraded route must not cut through the region the geodesics were
  // avoiding. route_around needs both endpoints outside every obstacle,
  // so the augmented set only applies when that holds.
  std::vector<Polygon> guarded_obstacles = obstacles;
  if (terrain_active) {
    for (const Polygon& ko : opt_.trajectory.terrain.keep_out) {
      guarded_obstacles.push_back(ko);
    }
  }
  auto chord_obstacles = [&](Vec2 a, Vec2 b) -> const std::vector<Polygon>& {
    for (const Polygon& ko : opt_.trajectory.terrain.keep_out) {
      if (ko.contains(a) || ko.contains(b)) return obstacles;
    }
    return guarded_obstacles;
  };
  plan.trajectories.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    if (terrain_active) {
      // Geodesic waypoints in the cost metric; each leg still honors the
      // FoI hole detours. Unroutable robots fall back to the straight
      // segment (typed, counted below) detoured around keep-out.
      TerrainRoute rt = router->route(static_cast<int>(r), targets[r]);
      if (rt.geodesic) {
        plan.trajectories.push_back(make_timed_path_via(
            rt.points, 0.0, opt_.transition_time, obstacles));
      } else {
        plan.trajectories.push_back(
            make_timed_path(positions[r], targets[r], 0.0,
                            opt_.transition_time,
                            chord_obstacles(positions[r], targets[r])));
      }
    } else {
      plan.trajectories.push_back(make_timed_path(
          positions[r], targets[r], 0.0, opt_.transition_time, obstacles));
    }
  }
  interp_span.finish();
  obs::inc(ins_.snapped_targets,
           static_cast<std::uint64_t>(plan.snapped_targets));
  obs::inc(ins_.repaired_robots,
           static_cast<std::uint64_t>(plan.repaired_robots));
  if (terrain_active) {
    const RouterStats& rs = router->stats();
    plan.fmm_solves = prior_fmm_solves + rs.solves;
    plan.fmm_fallbacks = rs.fallbacks;
    obs::inc(ins_.fmm_solves, static_cast<std::uint64_t>(rs.solves));
    obs::inc(ins_.fmm_goal_snapped,
             static_cast<std::uint64_t>(plan.fmm_goal_snapped));
    obs::inc(ins_.fmm_fb_blocked_start,
             static_cast<std::uint64_t>(rs.fb_blocked_start));
    obs::inc(ins_.fmm_fb_unreachable,
             static_cast<std::uint64_t>(rs.fb_unreachable));
    obs::inc(ins_.fmm_fb_stuck_descent,
             static_cast<std::uint64_t>(rs.fb_stuck_descent));
    obs::inc(ins_.fmm_fb_out_of_domain,
             static_cast<std::uint64_t>(rs.fb_out_of_domain));

    // Transition connectivity guard (C = 1, Def. 2). Synchronized straight
    // motion inherits the paper's connectivity argument; independently
    // curved geodesics can diverge mid-flight and split marginal links.
    // Sample the transition densely and straighten the worst-deviating
    // routes — skipping robots whose straight chord would cross a keep-out
    // cell — until the sampled march stays connected. Each straightening
    // is a typed degradation, tallied with the other fmm fallbacks.
    const int kGuardSamples = 257;
    std::vector<Vec2> guard_pos(n);
    auto first_disconnect = [&]() {
      for (int k = 0; k < kGuardSamples; ++k) {
        const double tk =
            opt_.transition_time * k / static_cast<double>(kGuardSamples - 1);
        for (std::size_t r = 0; r < n; ++r) {
          guard_pos[r] = plan.trajectories[r].position(tk);
        }
        if (!net::is_connected(guard_pos, r_c_)) return k;
      }
      return -1;
    };
    // Deviation of each routed polyline from its chord: the robots that
    // bend the most are the likeliest link-breakers, so they straighten
    // first (deterministic order: deviation desc, then index). Robots
    // whose chord crosses keep-out straighten to the chord with a
    // route_around detour hugging the polygon boundary — the most
    // neighbor-coherent path that still honors the region. Only robots
    // with an endpoint inside a keep-out polygon are pinned to their
    // geodesic (a plain chord would cut through the region).
    auto endpoint_in_keep_out = [&](std::size_t r) {
      for (const Polygon& ko : opt_.trajectory.terrain.keep_out) {
        if (ko.contains(positions[r]) || ko.contains(targets[r])) return true;
      }
      return false;
    };
    std::vector<std::pair<double, std::size_t>> by_deviation;
    for (std::size_t r = 0; r < n; ++r) {
      if (endpoint_in_keep_out(r)) continue;
      const Segment chord{positions[r], targets[r]};
      double dev = 0.0;
      for (Vec2 w : plan.trajectories[r].waypoints()) {
        dev = std::max(dev, distance(w, lerp(chord.a, chord.b,
                                             closest_point_param(chord, w))));
      }
      if (dev > 1e-9) by_deviation.emplace_back(-dev, r);
    }
    std::sort(by_deviation.begin(), by_deviation.end());
    std::size_t next = 0;
    const std::size_t batch = std::max<std::size_t>(1, n / 16);
    int straightened = 0;
    while (next < by_deviation.size() && first_disconnect() >= 0) {
      for (std::size_t b = 0; b < batch && next < by_deviation.size();
           ++b, ++next) {
        const std::size_t r = by_deviation[next].second;
        plan.trajectories[r] = make_timed_path(
            positions[r], targets[r], 0.0, opt_.transition_time,
            chord_obstacles(positions[r], targets[r]));
        ++straightened;
      }
    }
    plan.fmm_fallbacks += straightened;
    obs::inc(ins_.fmm_fb_connectivity,
             static_cast<std::uint64_t>(straightened));
  }

  // --- 8. Minor local adjustment: connectivity-safe Lloyd -----------------
  obs::Span adjust_span(ins_.spans, "adjustment", ins_.stage_adjustment);
  // Reference speed: fastest robot during the transition; adjustment steps
  // take time proportional to their largest move at that speed.
  double max_disp = 1e-9;
  for (std::size_t r = 0; r < n; ++r) {
    max_disp = std::max(max_disp, distance(positions[r], targets[r]));
  }
  double speed_ref = max_disp / opt_.transition_time;

  std::vector<Vec2> cur = targets;
  double t = opt_.transition_time;
  std::vector<Polygon> m2_obstacles;
  for (const Polygon& h : m2_.holes()) {
    m2_obstacles.push_back(h.translated(m2_offset));
  }
  // Loop-persistent scratch: one incremental connectivity checker serves
  // every trial probe (halved retries reuse its spatial index — their
  // bounded displacement rarely changes any link state, and an unchanged
  // edge set skips the BFS outright); the CVT scratch keeps the site index
  // and accumulators alive across Lloyd steps.
  net::IncrementalConnectivity connectivity(r_c_);
  GridCvt::Scratch cvt_scratch;
  std::vector<Vec2> local(n), cents, cand(n), trial(n);
  for (int step = 0; step < opt_.max_adjust_steps; ++step) {
    // Centroids in the origin frame of the precomputed engine.
    for (std::size_t r = 0; r < n; ++r) local[r] = cur[r] - m2_offset;
    if (opt_.adjustment == AdjustmentEngine::kLocalVoronoi) {
      cents = local_lloyd_->step(local).centroids;
    } else {
      cvt_->centroids_into(local, cvt_scratch, cents);
    }
    for (std::size_t r = 0; r < n; ++r) cand[r] = cents[r] + m2_offset;

    // Connectivity-safe step: try the full move; halve collectively while
    // the trial configuration would split the network (Sec. III-D-1) or —
    // under terrain routing — march a robot through a keep-out cell.
    double factor = 1.0;
    bool ok = false;
    int max_halvings = opt_.safe_adjustment ? 7 : 1;
    for (int halving = 0; halving < max_halvings; ++halving) {
      for (std::size_t r = 0; r < n; ++r) {
        trial[r] = lerp(cur[r], cand[r], factor);
      }
      bool blocked_move = false;
      if (terrain_active && router->field().has_blocked()) {
        for (std::size_t r = 0; r < n; ++r) {
          if (router->segment_blocked(cur[r], trial[r])) {
            blocked_move = true;
            break;
          }
        }
      }
      if (!blocked_move &&
          (!opt_.safe_adjustment || connectivity.check(trial))) {
        ok = true;
        break;
      }
      factor /= 2.0;
    }
    if (!ok) break;  // no safe move at all: stay put

    double max_move = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      max_move = std::max(max_move, distance(trial[r], cur[r]));
    }
    if (max_move <= opt_.adjust.tol) {
      cur = trial;
      ++plan.adjust_steps;
      break;
    }
    double dt = std::max(max_move / speed_ref, 1e-6);
    for (std::size_t r = 0; r < n; ++r) {
      Trajectory seg =
          make_timed_path(cur[r], trial[r], t, t + dt, m2_obstacles);
      // Append the step's waypoints, skipping the duplicated start point.
      for (std::size_t w = 1; w < seg.num_waypoints(); ++w) {
        plan.trajectories[r].append(seg.waypoints()[w], seg.times()[w]);
      }
    }
    cur = trial;
    t += dt;
    ++plan.adjust_steps;
  }

  adjust_span.finish();

  plan.final_positions = cur;
  plan.total_time = t;
  obs::inc(ins_.plans);
  return plan;
}

PlanOutcome MarchPlanner::plan_robust(const std::vector<Vec2>& positions,
                                      Vec2 m2_offset) const {
  PlanOutcome out;
  if (positions.empty()) {
    out.status = Status::InvalidArgument("no robots to plan for");
    return out;
  }
  for (std::size_t r = 0; r < positions.size(); ++r) {
    if (!std::isfinite(positions[r].x) || !std::isfinite(positions[r].y)) {
      out.status = Status::InvalidArgument(
          "non-finite position for robot " + std::to_string(r));
      return out;
    }
  }
  if (!std::isfinite(m2_offset.x) || !std::isfinite(m2_offset.y)) {
    out.status = Status::InvalidArgument("non-finite m2 offset");
    return out;
  }

  // Widening the extraction radius keeps more Delaunay edges, so sparse
  // but connected deployments that the paper's alpha cut refuses to mesh
  // get a second chance before we give up on the pipeline entirely.
  constexpr double kRelaxedBoost = 1.25;
  auto attempt = [&](PlanMode mode, auto&& make_plan) {
    PlanAttempt a;
    a.mode = mode;
    try {
      MarchPlan plan = make_plan();
      a.succeeded = true;
      out.degradation.attempts.push_back(std::move(a));
      out.degradation.mode = mode;
      out.degradation.degraded = mode != PlanMode::kPrimary;
      if (out.degradation.degraded) {
        obs::inc(ins_.plans_degraded);
        obs::inc(mode == PlanMode::kRelaxedExtraction ? ins_.fallback_relaxed
                                                      : ins_.fallback_baseline);
      }
      out.plan = std::move(plan);
      return true;
    } catch (const std::exception& e) {
      a.error = e.what();
      out.degradation.attempts.push_back(std::move(a));
      return false;
    }
  };

  if (attempt(PlanMode::kPrimary, [&] {
        return plan_impl(positions, m2_offset, opt_.alpha_scale);
      })) {
    return out;
  }
  if (attempt(PlanMode::kRelaxedExtraction, [&] {
        return plan_impl(positions, m2_offset,
                         opt_.alpha_scale * kRelaxedBoost);
      })) {
    return out;
  }
  if (attempt(PlanMode::kBaselineFallback, [&] {
        BaselineOptions base;
        base.transition_time = opt_.transition_time;
        HungarianMarchPlanner hungarian(
            m1_, m2_, r_c_, static_cast<int>(positions.size()), base);
        return hungarian.plan(positions, m2_offset);
      })) {
    return out;
  }

  std::string why = "all planning modes failed:";
  for (const PlanAttempt& a : out.degradation.attempts) {
    why += std::string(" [") + plan_mode_name(a.mode) + ": " + a.error + "]";
  }
  out.degradation.degraded = true;
  out.status = Status::Internal(why);
  return out;
}

}  // namespace anr
