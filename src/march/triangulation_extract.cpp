#include "march/triangulation_extract.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "mesh/delaunay.h"
#include "net/unit_disk_graph.h"

namespace anr {

ExtractionResult extract_triangulation(const std::vector<Vec2>& positions,
                                       double r_c) {
  auto ex = alpha_extract(positions, r_c);
  ExtractionResult out;
  out.mesh = std::move(ex.mesh);
  out.unmeshed = std::move(ex.unmeshed);
  out.messages = 0;
  return out;
}

ExtractionResult extract_triangulation_gabriel(
    const std::vector<Vec2>& positions, double r_c) {
  const int n = static_cast<int>(positions.size());
  auto adj = net::unit_disk_adjacency(positions, r_c);

  // One beacon round gives each robot its neighbors' positions; the
  // Gabriel test for edge (u, v) only consults common neighbors (any
  // witness inside the diameter disk is within r_c of both ends).
  std::size_t messages = 0;
  for (const auto& nb : adj) messages += nb.size();

  std::set<EdgeKey> kept_edges;
  for (int u = 0; u < n; ++u) {
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (v <= u) continue;
      Vec2 mid = (positions[static_cast<std::size_t>(u)] +
                  positions[static_cast<std::size_t>(v)]) *
                 0.5;
      double rad2 = distance2(positions[static_cast<std::size_t>(u)], mid);
      bool witness = false;
      for (int w : adj[static_cast<std::size_t>(u)]) {
        if (w == v) continue;
        if (distance2(positions[static_cast<std::size_t>(w)], mid) <
            rad2 - 1e-12) {
          witness = true;
          break;
        }
      }
      if (!witness) kept_edges.insert(EdgeKey(u, v));
    }
  }

  // Triangles = 3-cliques of Gabriel edges.
  std::vector<std::vector<int>> kept_adj(static_cast<std::size_t>(n));
  for (const EdgeKey& e : kept_edges) {
    kept_adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    kept_adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  for (auto& list : kept_adj) std::sort(list.begin(), list.end());
  std::vector<Tri> tris;
  for (const EdgeKey& e : kept_edges) {
    const auto& na = kept_adj[static_cast<std::size_t>(e.a)];
    const auto& nbb = kept_adj[static_cast<std::size_t>(e.b)];
    std::vector<int> common;
    std::set_intersection(na.begin(), na.end(), nbb.begin(), nbb.end(),
                          std::back_inserter(common));
    for (int w : common) {
      if (w > e.b) tris.push_back(Tri{e.a, e.b, w});
    }
  }
  auto cleaned = clean_to_manifold(TriangleMesh(positions, std::move(tris)));
  ExtractionResult out;
  out.mesh = std::move(cleaned.mesh);
  out.unmeshed = std::move(cleaned.unmeshed);
  out.messages = messages;
  return out;
}

ExtractionResult extract_triangulation_distributed(
    const std::vector<Vec2>& positions, double r_c) {
  const int n = static_cast<int>(positions.size());
  auto adj = net::unit_disk_adjacency(positions, r_c);

  // Beacon round: every robot broadcasts its position (1 message per
  // directed link).
  std::size_t messages = 0;
  for (const auto& nb : adj) messages += nb.size();

  // Each robot computes the Delaunay triangulation of {self} + neighbors
  // and keeps incident edges (<= r_c). This uses only local knowledge.
  std::vector<std::set<int>> keeps(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto& nb = adj[static_cast<std::size_t>(v)];
    if (nb.size() < 2) continue;  // cannot form a local triangle
    std::vector<Vec2> local;
    std::vector<int> ids;
    local.push_back(positions[static_cast<std::size_t>(v)]);
    ids.push_back(v);
    for (int u : nb) {
      local.push_back(positions[static_cast<std::size_t>(u)]);
      ids.push_back(u);
    }
    TriangleMesh dt;
    try {
      dt = delaunay(local);
    } catch (const ContractViolation&) {
      continue;  // collinear local neighborhood: keep nothing
    }
    for (const EdgeKey& e : dt.edges()) {
      if (e.a != 0 && e.b != 0) continue;  // only edges incident to self
      int other = ids[static_cast<std::size_t>(e.a == 0 ? e.b : e.a)];
      keeps[static_cast<std::size_t>(v)].insert(other);
    }
  }

  // Agreement round: robots exchange keep-lists with neighbors (1 message
  // per directed link); a link survives iff both ends keep it.
  for (const auto& nb : adj) messages += nb.size();
  std::set<EdgeKey> kept_edges;
  for (int v = 0; v < n; ++v) {
    for (int u : keeps[static_cast<std::size_t>(v)]) {
      if (u > v && keeps[static_cast<std::size_t>(u)].count(v)) {
        kept_edges.insert(EdgeKey(v, u));
      }
    }
  }

  // Triangles = 3-cliques of kept edges (each robot can form these from
  // its own and neighbors' keep lists).
  std::vector<std::vector<int>> kept_adj(static_cast<std::size_t>(n));
  for (const EdgeKey& e : kept_edges) {
    kept_adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    kept_adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  for (auto& list : kept_adj) std::sort(list.begin(), list.end());
  std::vector<Tri> tris;
  for (const EdgeKey& e : kept_edges) {
    const auto& na = kept_adj[static_cast<std::size_t>(e.a)];
    const auto& nbb = kept_adj[static_cast<std::size_t>(e.b)];
    std::vector<int> common;
    std::set_intersection(na.begin(), na.end(), nbb.begin(), nbb.end(),
                          std::back_inserter(common));
    for (int w : common) {
      if (w > e.b) tris.push_back(Tri{e.a, e.b, w});
    }
  }

  auto cleaned = clean_to_manifold(TriangleMesh(positions, std::move(tris)));
  ExtractionResult out;
  out.mesh = std::move(cleaned.mesh);
  out.unmeshed = std::move(cleaned.unmeshed);
  out.messages = messages;
  return out;
}

}  // namespace anr
