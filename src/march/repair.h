// Global-connectivity repair of mapped targets (paper Sec. III-D-1) —
// centralized equivalent of net/protocols/subgroup.
//
// After the modified harmonic map assigns destination q_i to each robot,
// links whose endpoints end up farther than r_c apart will break. Robots
// (or whole subgroups) with no surviving path to a boundary vertex would
// be cut off mid-march. The repair: every vertex of an isolated subgroup
// replaces its own destination with a *parallel* march — it copies the
// displacement of the subgroup root's reference neighbor (a reached M1
// neighbor nearest to the boundary in surviving-link hops). Identical
// displacement keeps every intra-subgroup distance constant for the whole
// transition, and the root keeps its link to the reference, so the
// subgroup stays attached to the main body throughout.
#pragma once

#include <functional>
#include <vector>

#include "geom/vec2.h"

namespace anr {

struct RepairReport {
  /// Robots whose destination was replaced by a parallel march.
  int repaired = 0;
  /// Number of isolated subgroups found (singletons included).
  int subgroups = 0;
  /// Per robot: true when its target was rewritten.
  std::vector<char> was_repaired;
  /// Surviving-link hop distance to the nearest boundary vertex; -1 when
  /// unreached before repair.
  std::vector<int> boundary_hops;
};

/// Repairs `targets` in place.
///   start       — robot positions in M1
///   targets     — mapped destinations (modified)
///   adjacency   — M1 unit-disk communication graph
///   is_boundary — boundary vertices of the triangulation T (these map
///                 onto the boundary of M2, forming the connected rim the
///                 paper's argument relies on)
///   r_c         — communication range
///   link_metric — distance used for link-survival checks; defaults to
///                 planar Euclidean (the terrain layer passes the lifted
///                 3D chord metric)
RepairReport repair_targets(
    const std::vector<Vec2>& start, std::vector<Vec2>& targets,
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<char>& is_boundary, double r_c,
    const std::function<double(Vec2, Vec2)>& link_metric = {});

}  // namespace anr
