#include "march/trajectory.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anr {

void Trajectory::append(Vec2 p, double t) {
  ANR_CHECK_MSG(times_.empty() || t >= times_.back() - 1e-12,
                "trajectory times must be nondecreasing");
  pts_.push_back(p);
  times_.push_back(times_.empty() ? t : std::max(t, times_.back()));
}

Vec2 Trajectory::position(double t) const {
  ANR_CHECK(!pts_.empty());
  if (t <= times_.front()) return pts_.front();
  if (t >= times_.back()) return pts_.back();
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  std::size_t lo = hi - 1;
  double span = times_[hi] - times_[lo];
  if (span <= 0.0) return pts_[hi];
  double u = (t - times_[lo]) / span;
  return lerp(pts_[lo], pts_[hi], u);
}

Vec2 Trajectory::start() const {
  ANR_CHECK(!pts_.empty());
  return pts_.front();
}

Vec2 Trajectory::end() const {
  ANR_CHECK(!pts_.empty());
  return pts_.back();
}

double Trajectory::start_time() const {
  ANR_CHECK(!times_.empty());
  return times_.front();
}

double Trajectory::end_time() const {
  ANR_CHECK(!times_.empty());
  return times_.back();
}

double Trajectory::length() const {
  double len = 0.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    len += distance(pts_[i - 1], pts_[i]);
  }
  return len;
}

double Trajectory::length_between(double t0, double t1) const {
  if (pts_.empty() || t1 <= t0) return 0.0;
  double len = 0.0;
  Vec2 prev = position(t0);
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    if (times_[i] <= t0 || times_[i] >= t1) continue;
    len += distance(prev, pts_[i]);
    prev = pts_[i];
  }
  len += distance(prev, position(t1));
  return len;
}

Trajectory Trajectory::truncated_at(double t) const {
  ANR_CHECK(!pts_.empty());
  double tc = std::clamp(t, start_time(), end_time());
  Trajectory out;
  for (std::size_t i = 0; i < pts_.size() && times_[i] < tc - 1e-12; ++i) {
    out.append(pts_[i], times_[i]);
  }
  out.append(position(tc), tc);
  return out;
}

void Trajectory::extend(const Trajectory& tail) {
  for (std::size_t i = 0; i < tail.num_waypoints(); ++i) {
    if (!pts_.empty() && tail.times()[i] <= times_.back() + 1e-12 &&
        distance(tail.waypoints()[i], pts_.back()) < 1e-12) {
      continue;  // duplicated joint
    }
    append(tail.waypoints()[i], std::max(tail.times()[i],
                                         times_.empty() ? tail.times()[i]
                                                        : times_.back()));
  }
}

namespace {

// Perimeter parameter (cumulative boundary length) of the point on `poly`'s
// boundary closest to p, plus the snapped point itself.
std::pair<double, Vec2> perimeter_param(const Polygon& poly, Vec2 p) {
  double best_d = 1e300, best_s = 0.0;
  Vec2 best_pt = p;
  double s = 0.0;
  const auto& pts = poly.points();
  for (std::size_t i = 0, n = pts.size(); i < n; ++i) {
    Segment e{pts[i], pts[(i + 1) % n]};
    double u = closest_point_param(e, p);
    Vec2 cp = lerp(e.a, e.b, u);
    double d = distance(p, cp);
    if (d < best_d) {
      best_d = d;
      best_s = s + u * e.length();
      best_pt = cp;
    }
    s += e.length();
  }
  return {best_s, best_pt};
}

// Waypoints along poly's boundary from perimeter param s0 to s1, walking
// the shorter arc. Returns points *between* the two params (polygon
// vertices passed), in walk order.
std::vector<Vec2> boundary_arc(const Polygon& poly, double s0, double s1) {
  const auto& pts = poly.points();
  const std::size_t n = pts.size();
  double total = poly.perimeter();

  double fwd = std::fmod(s1 - s0 + total, total);
  bool forward = fwd <= total - fwd;
  double arc_len = forward ? fwd : total - fwd;

  // Perimeter param of each vertex.
  std::vector<double> cum(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    cum[i] = cum[i - 1] + distance(pts[i - 1], pts[i]);
  }

  // Collect vertices whose offset from s0 along the chosen direction lies
  // strictly inside (0, arc_len), ordered by that offset.
  std::vector<std::pair<double, Vec2>> hits;
  for (std::size_t i = 0; i < n; ++i) {
    double off = forward ? std::fmod(cum[i] - s0 + total, total)
                         : std::fmod(s0 - cum[i] + total, total);
    if (off > 1e-9 && off < arc_len - 1e-9) {
      hits.emplace_back(off, pts[i]);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Vec2> out;
  out.reserve(hits.size());
  for (const auto& [off, p] : hits) out.push_back(p);
  return out;
}

// True when p is strictly inside poly (beyond boundary tolerance).
bool strictly_inside(const Polygon& poly, Vec2 p) {
  return poly.contains(p) && poly.boundary_distance(p) > 1e-7;
}

// Routes segment a->b around a single obstacle; returns full waypoint list
// including a and b.
std::vector<Vec2> route_one(Vec2 a, Vec2 b, const Polygon& obstacle) {
  if (!obstacle.segment_crosses_boundary(a, b) && !strictly_inside(obstacle, lerp(a, b, 0.5))) {
    return {a, b};
  }
  // Entry/exit: crossing params of the segment with the obstacle edges.
  Segment s{a, b};
  std::vector<double> params;
  for (const Segment& e : obstacle.edges()) {
    auto x = segment_intersection(s, e);
    if (!x) continue;
    double len = distance(a, b);
    if (len <= 0.0) continue;
    params.push_back(distance(a, *x) / len);
  }
  std::sort(params.begin(), params.end());
  params.erase(std::unique(params.begin(), params.end(),
                           [](double x, double y) { return std::abs(x - y) < 1e-9; }),
               params.end());
  if (params.size() < 2) return {a, b};

  std::vector<Vec2> out{a};
  for (std::size_t i = 0; i + 1 < params.size(); ++i) {
    double mid = (params[i] + params[i + 1]) / 2.0;
    if (!strictly_inside(obstacle, lerp(a, b, mid))) continue;
    Vec2 entry = lerp(a, b, params[i]);
    Vec2 exit = lerp(a, b, params[i + 1]);
    auto [s0, p0] = perimeter_param(obstacle, entry);
    auto [s1, p1] = perimeter_param(obstacle, exit);
    out.push_back(p0);
    for (Vec2 w : boundary_arc(obstacle, s0, s1)) out.push_back(w);
    out.push_back(p1);
  }
  out.push_back(b);
  return out;
}

}  // namespace

std::vector<Vec2> route_around(Vec2 a, Vec2 b,
                               const std::vector<Polygon>& obstacles) {
  std::vector<Vec2> path{a, b};
  // Iterate: rerouting around one obstacle can newly cross another; a few
  // passes settle for disjoint obstacles.
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    std::vector<Vec2> next{path.front()};
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      Vec2 u = path[i], v = path[i + 1];
      std::vector<Vec2> best{u, v};
      for (const Polygon& ob : obstacles) {
        auto routed = route_one(u, v, ob);
        if (routed.size() > 2) {
          best = std::move(routed);
          changed = true;
          break;  // handle one obstacle per sub-segment per pass
        }
      }
      for (std::size_t k = 1; k < best.size(); ++k) next.push_back(best[k]);
    }
    path = std::move(next);
    if (!changed) break;
  }
  // Strip endpoints.
  if (path.size() <= 2) return {};
  return std::vector<Vec2>(path.begin() + 1, path.end() - 1);
}

Trajectory make_timed_path(Vec2 p, Vec2 q, double t0, double t1,
                           const std::vector<Polygon>& obstacles) {
  return make_timed_path_via({p, q}, t0, t1, obstacles);
}

Trajectory make_timed_path_via(const std::vector<Vec2>& via, double t0,
                               double t1,
                               const std::vector<Polygon>& obstacles) {
  ANR_CHECK(t1 >= t0);
  ANR_CHECK_MSG(!via.empty(), "timed path needs at least one waypoint");
  std::vector<Vec2> pts;
  pts.reserve(via.size());
  pts.push_back(via.front());
  for (std::size_t i = 0; i + 1 < via.size(); ++i) {
    for (Vec2 m : route_around(via[i], via[i + 1], obstacles)) {
      pts.push_back(m);
    }
    pts.push_back(via[i + 1]);
  }

  double total = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) total += distance(pts[i - 1], pts[i]);

  Trajectory out;
  if (total <= 0.0) {
    out.append(pts.front(), t0);
    out.append(pts.back(), t1);
    return out;
  }
  double acc = 0.0;
  out.append(pts[0], t0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    acc += distance(pts[i - 1], pts[i]);
    out.append(pts[i], t0 + (t1 - t0) * acc / total);
  }
  return out;
}

}  // namespace anr
