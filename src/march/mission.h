// Multi-FoI missions — the paper's framing (Sec. I): "a group of ANRs
// that are instructed to explore a number of FoIs. After they complete a
// task at current FoI, they move to the next one."
//
// A Mission is an ordered list of FoIs (each optionally with its own task
// density). MissionPlanner plans every leg, feeding each leg's final
// deployment into the next, and aggregates the per-leg and cumulative
// metrics. Each leg's connectivity guarantee makes the chaining valid:
// the swarm arrives connected, so the next leg can plan from it.
#pragma once

#include <string>
#include <vector>

#include "coverage/density.h"
#include "march/planner.h"
#include "march/transition_sim.h"

namespace anr {

/// One stop of the mission.
struct MissionLeg {
  FieldOfInterest foi;
  DensityFn density;  ///< task density in this FoI (empty = uniform)
  std::string name;
};

/// Planned + measured outcome of one leg.
struct MissionLegResult {
  MarchPlan plan;
  TransitionMetrics metrics;
  std::string name;
};

struct MissionResult {
  std::vector<MissionLegResult> legs;
  double total_distance = 0.0;
  /// Minimum stable-link ratio over the legs (the weakest transition).
  double worst_link_ratio = 1.0;
  /// True when every leg kept global connectivity.
  bool always_connected = true;
  std::vector<Vec2> final_positions;
};

/// Plans the whole mission starting from `deployment` in `start_foi`.
/// The same PlannerOptions apply to every leg (the per-leg density
/// overrides options.density).
MissionResult run_mission(const FieldOfInterest& start_foi,
                          const std::vector<Vec2>& deployment,
                          const std::vector<MissionLeg>& legs, double r_c,
                          const PlannerOptions& options = {},
                          int time_samples = 140);

}  // namespace anr
