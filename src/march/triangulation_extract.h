// Extraction of the triangulation T from the connectivity graph
// (paper Sec. III-A, following the distributed algorithm of Zhou et al.
// INFOCOM'11 [18]).
//
// Each robot knows its own GPS position (paper Sec. II) and learns its
// 1-hop neighbors' positions from a single beacon exchange. The
// distributed rule is localized Delaunay: a robot keeps an incident link
// iff that link is a Delaunay edge of its own 1-hop neighborhood; a link
// survives iff *both* endpoints keep it. Triangles are the 3-cliques of
// surviving links. On the dense, lattice-like deployments this library
// produces, the result coincides with the centralized alpha extraction
// (global Delaunay restricted to edges <= r_c) — asserted in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/alpha_extract.h"
#include "mesh/triangle_mesh.h"

namespace anr {

struct ExtractionResult {
  TriangleMesh mesh;
  std::vector<VertexId> unmeshed;  ///< robots not in any kept triangle
  std::size_t messages = 0;        ///< beacon + agreement messages
};

/// Centralized reference: global Delaunay filtered to edges <= r_c,
/// cleaned to a manifold.
ExtractionResult extract_triangulation(const std::vector<Vec2>& positions,
                                       double r_c);

/// Distributed localized-Delaunay extraction (one beacon round + one
/// keep-list exchange), followed by the same manifold cleanup.
ExtractionResult extract_triangulation_distributed(
    const std::vector<Vec2>& positions, double r_c);

/// Ablation variant: Gabriel-graph extraction. An edge survives iff the
/// disk with that edge as diameter contains no other robot — a purely
/// 1-hop-checkable rule (each robot tests its neighbors' positions), but
/// the resulting graph is sparser than the Delaunay triangulation, so the
/// derived triangulation T has fewer triangles and a weaker link
/// structure. bench_ablation quantifies the cost.
ExtractionResult extract_triangulation_gabriel(
    const std::vector<Vec2>& positions, double r_c);

}  // namespace anr
