#include "march/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "net/unit_disk_graph.h"

namespace anr {

std::vector<std::pair<int, int>> communication_links(
    const std::vector<Vec2>& positions, double r_c) {
  return net::unit_disk_edges(positions, r_c);
}

double predicted_stable_link_ratio(const std::vector<Vec2>& p,
                                   const std::vector<Vec2>& q,
                                   const std::vector<std::pair<int, int>>& links,
                                   double r_c) {
  ANR_CHECK(p.size() == q.size());
  if (links.empty()) return 1.0;
  double r2 = r_c * r_c;
  std::size_t stable = 0;
  for (auto [i, j] : links) {
    bool at_start = distance2(p[static_cast<std::size_t>(i)],
                              p[static_cast<std::size_t>(j)]) <= r2 + 1e-9;
    bool at_end = distance2(q[static_cast<std::size_t>(i)],
                            q[static_cast<std::size_t>(j)]) <= r2 + 1e-9;
    if (at_start && at_end) ++stable;
  }
  return static_cast<double>(stable) / static_cast<double>(links.size());
}

double predicted_stable_link_ratio_bounded(
    const std::vector<Vec2>& p, const std::vector<Vec2>& q,
    const std::vector<double>& path_lengths,
    const std::vector<std::pair<int, int>>& links, double r_c) {
  ANR_CHECK(p.size() == q.size());
  ANR_CHECK(path_lengths.size() == p.size());
  if (links.empty()) return 1.0;
  const double r2 = r_c * r_c;
  std::size_t stable = 0;
  for (auto [i, j] : links) {
    const std::size_t ui = static_cast<std::size_t>(i);
    const std::size_t uj = static_cast<std::size_t>(j);
    const double d0 = distance(p[ui], p[uj]);
    const double d1 = distance(q[ui], q[uj]);
    if (d0 * d0 > r2 + 1e-9 || d1 * d1 > r2 + 1e-9) continue;
    auto deviation = [&](std::size_t r) {
      const double d = distance(p[r], q[r]);
      const double len = std::max(path_lengths[r], d);
      return 0.5 * std::sqrt(std::max(0.0, len * len - d * d));
    };
    const double dev = deviation(ui) + deviation(uj);
    if (dev > 0.0 && std::max(d0, d1) + dev > r_c + 1e-9) continue;
    ++stable;
  }
  return static_cast<double>(stable) / static_cast<double>(links.size());
}

double total_displacement(const std::vector<Vec2>& p,
                          const std::vector<Vec2>& q) {
  ANR_CHECK(p.size() == q.size());
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) d += distance(p[i], q[i]);
  return d;
}

}  // namespace anr
