#include "march/metrics.h"

#include "common/check.h"
#include "net/unit_disk_graph.h"

namespace anr {

std::vector<std::pair<int, int>> communication_links(
    const std::vector<Vec2>& positions, double r_c) {
  return net::unit_disk_edges(positions, r_c);
}

double predicted_stable_link_ratio(const std::vector<Vec2>& p,
                                   const std::vector<Vec2>& q,
                                   const std::vector<std::pair<int, int>>& links,
                                   double r_c) {
  ANR_CHECK(p.size() == q.size());
  if (links.empty()) return 1.0;
  double r2 = r_c * r_c;
  std::size_t stable = 0;
  for (auto [i, j] : links) {
    bool at_start = distance2(p[static_cast<std::size_t>(i)],
                              p[static_cast<std::size_t>(j)]) <= r2 + 1e-9;
    bool at_end = distance2(q[static_cast<std::size_t>(i)],
                            q[static_cast<std::size_t>(j)]) <= r2 + 1e-9;
    if (at_start && at_end) ++stable;
  }
  return static_cast<double>(stable) / static_cast<double>(links.size());
}

double total_displacement(const std::vector<Vec2>& p,
                          const std::vector<Vec2>& q) {
  ANR_CHECK(p.size() == q.size());
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) d += distance(p[i], q[i]);
  return d;
}

}  // namespace anr
