// Resilience: robot failure recovery and mid-march retargeting.
//
// The paper's introduction motivates both: "an ANR system is more
// reliable since the failure of an individual robot can be recovered by
// its peers", and "an unexpected event may happen during the relocation.
// As a result, the ANRs must cooperatively determine how to adapt to the
// event. If an ANR is isolated at this time, it may be excluded from the
// new plan and thus become permanently lost." — which is exactly why the
// marching algorithm maintains global connectivity at every instant: the
// swarm can be retargeted or can absorb failures at ANY point of the
// march, because it is always one connected network.
#pragma once

#include <vector>

#include "coverage/grid_cvt.h"
#include "march/planner.h"
#include "march/trajectory.h"

namespace anr {

/// Outcome of re-covering the target FoI after robots fail.
struct FailureRecovery {
  std::vector<int> survivors;            ///< original indices that survive
  std::vector<Trajectory> trajectories;  ///< survivors' full timelines
  std::vector<Vec2> final_positions;     ///< survivors' re-spread positions
  int lloyd_steps = 0;
  double recovery_distance = 0.0;  ///< extra distance spent re-covering
  double recovery_start = 0.0;
};

/// Robots in `failed` die at `t_fail`. Survivors finish their planned
/// trajectories, then re-run a connectivity-safe Lloyd over the target FoI
/// (world coordinates) to re-cover the dead robots' regions.
FailureRecovery recover_from_failure(const std::vector<Trajectory>& planned,
                                     double t_fail,
                                     const std::vector<int>& failed,
                                     const FieldOfInterest& m2_world,
                                     double r_c,
                                     const DensityFn& density = {},
                                     int max_lloyd_steps = 60,
                                     int cvt_samples = 15000);

/// Outcome of retargeting the swarm mid-march.
struct RetargetResult {
  std::vector<Trajectory> trajectories;  ///< spliced full timelines
  MarchPlan second_leg;                  ///< plan of the new march
  std::vector<Vec2> positions_at_event;  ///< where the event caught them
  double event_time = 0.0;
};

/// At `t_event`, a new instruction arrives: abandon the current march and
/// head to `new_planner`'s M2 (offset by `new_offset`). The swarm's
/// positions at that instant become the new deployment — valid because
/// the in-progress march kept the network connected. Trajectory times of
/// the second leg are shifted to start at `t_event`.
RetargetResult retarget_mid_march(const std::vector<Trajectory>& current,
                                  double t_event,
                                  const MarchPlanner& new_planner,
                                  Vec2 new_offset);

}  // namespace anr
