#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace anr::obs {

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(HistogramSpec spec) : spec_(spec) {
  ANR_CHECK(spec_.min > 0.0);
  ANR_CHECK(spec_.factor > 1.0);
  ANR_CHECK(spec_.buckets >= 1);
  inv_log_factor_ = 1.0 / std::log(spec_.factor);
  bounds_.reserve(static_cast<std::size_t>(spec_.buckets));
  double b = spec_.min;
  for (int i = 0; i < spec_.buckets; ++i) {
    bounds_.push_back(b);
    b *= spec_.factor;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(spec_.buckets) + 1);
  for (int i = 0; i <= spec_.buckets; ++i) counts_[i].store(0);
}

int Histogram::bucket_of(double v) const {
  if (!(v > spec_.min)) return 0;  // NaN and <= min land in bucket 0
  // Finite bucket i covers (min * factor^(i-1), min * factor^i]; the log
  // gives the candidate, the boundary nudge keeps exact bounds inclusive.
  int i = static_cast<int>(std::ceil(std::log(v / spec_.min) *
                                     inv_log_factor_ - 1e-12));
  if (i < 0) i = 0;
  if (i >= spec_.buckets) return spec_.buckets;  // overflow (+Inf) bucket
  // Guard the float rounding near bucket edges.
  if (v > bounds_[static_cast<std::size_t>(i)]) ++i;
  while (i > 0 && v <= bounds_[static_cast<std::size_t>(i) - 1]) --i;
  return std::min(i, spec_.buckets);
}

void Histogram::observe(double v) {
  counts_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double s;
    std::memcpy(&s, &cur, sizeof(s));
    s += v;
    std::uint64_t next;
    std::memcpy(&next, &s, sizeof(next));
    if (sum_bits_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double s;
  std::memcpy(&s, &bits, sizeof(s));
  return s;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(spec_.buckets) + 1);
  for (int i = 0; i <= spec_.buckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

Registry::Registry(bool enabled) : enabled_(enabled) {}

namespace {

Labels canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string entry_key(std::string_view name, const Labels& canonical) {
  std::string key(name);
  for (const auto& [k, v] : canonical) {
    key.push_back('\x1f');
    key += k;
    key.push_back('\x1e');
    key += v;
  }
  return key;
}

}  // namespace

Registry::Entry* Registry::resolve(std::string_view name, const Labels& labels,
                                   std::string_view help, MetricType type,
                                   HistogramSpec spec) {
  ANR_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  Labels canonical = canonical_labels(labels);
  std::string key = entry_key(name, canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    ANR_CHECK_MSG(e.type == type,
                  "metric '" + std::string(name) +
                      "' re-registered with a different type");
    return &e;
  }
  Entry e;
  e.name = std::string(name);
  e.help = std::string(help);
  e.type = type;
  e.labels = std::move(canonical);
  switch (type) {
    case MetricType::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      e.histogram = std::make_unique<Histogram>(spec);
      break;
  }
  entries_.push_back(std::move(e));
  index_.emplace(std::move(key), entries_.size() - 1);
  return &entries_.back();
}

Counter* Registry::counter(std::string_view name, const Labels& labels,
                           std::string_view help) {
  if (!enabled_) return nullptr;
  return resolve(name, labels, help, MetricType::kCounter, {})->counter.get();
}

Gauge* Registry::gauge(std::string_view name, const Labels& labels,
                       std::string_view help) {
  if (!enabled_) return nullptr;
  return resolve(name, labels, help, MetricType::kGauge, {})->gauge.get();
}

Histogram* Registry::histogram(std::string_view name, const Labels& labels,
                               std::string_view help, HistogramSpec spec) {
  if (!enabled_) return nullptr;
  return resolve(name, labels, help, MetricType::kHistogram, spec)
      ->histogram.get();
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSnapshot s;
    s.name = e.name;
    s.help = e.help;
    s.type = e.type;
    s.labels = e.labels;
    switch (e.type) {
      case MetricType::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricType::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricType::kHistogram:
        s.bounds = e.histogram->upper_bounds();
        s.buckets = e.histogram->bucket_counts();
        s.sum = e.histogram->sum();
        s.count = e.histogram->count();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace anr::obs
