// Scoped span tracing (the timing side of src/obs).
//
// A Span is an RAII stopwatch over one pipeline stage. On destruction it
// pushes a SpanRecord into a bounded SpanRing (fixed-capacity, oldest
// overwritten) and optionally feeds the duration into a Histogram, so the
// same guard powers both the recent-trace view and the aggregate latency
// distribution. Nesting is tracked with a thread-local depth counter;
// records carry the depth at which they ran, and completion order (inner
// spans finish first) is preserved by a monotone sequence number.
//
// Both the ring and the histogram target are nullable: a Span constructed
// against nullptrs reads no clock and records nothing, which is what a
// disabled registry (obs::NullRegistry) hands out.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace anr::obs {

class Histogram;

/// One completed span. `name` must point at static-lifetime storage (the
/// instrumentation sites use string literals).
struct SpanRecord {
  const char* name = "";
  double start_s = 0.0;  ///< seconds since the ring's epoch
  double dur_s = 0.0;
  int depth = 0;         ///< 0 = outermost
  std::uint64_t seq = 0; ///< completion order, monotone per ring
};

/// Bounded ring of completed spans. push() takes a mutex (spans close at
/// stage granularity — a handful per plan — so this is off the per-event
/// hot path); snapshot() copies out oldest-first.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity = 1024);

  void push(const char* name, double start_s, double dur_s, int depth);

  std::vector<SpanRecord> snapshot() const;
  std::size_t capacity() const { return capacity_; }
  /// Total spans ever pushed (>= snapshot().size()).
  std::uint64_t total_recorded() const;

  /// Seconds since this ring was created (span start timestamps).
  double now_seconds() const {
    return std::chrono::duration<double>(clock::now() - epoch_).count();
  }

 private:
  using clock = std::chrono::steady_clock;

  std::size_t capacity_;
  clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // ring_[seq % capacity_]
  std::uint64_t seq_ = 0;
};

/// RAII stage timer. Records into `ring` and/or `hist` when non-null;
/// fully inert (no clock read) when both are null.
class Span {
 public:
  Span(SpanRing* ring, const char* name, Histogram* hist = nullptr);
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Stops and records early; the destructor becomes a no-op. Idempotent.
  void finish();

 private:
  SpanRing* ring_;
  Histogram* hist_;
  const char* name_;
  bool open_;
  int depth_ = 0;
  double start_s_ = 0.0;  ///< ring-epoch start (ring mode)
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace anr::obs
