#include "obs/span.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace anr::obs {

namespace {
thread_local int t_span_depth = 0;
}  // namespace

SpanRing::SpanRing(std::size_t capacity)
    : capacity_(capacity), epoch_(clock::now()) {
  ANR_CHECK(capacity_ >= 1);
  ring_.reserve(capacity_);
}

void SpanRing::push(const char* name, double start_s, double dur_s,
                    int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord r;
  r.name = name;
  r.start_s = start_s;
  r.dur_s = dur_s;
  r.depth = depth;
  r.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[static_cast<std::size_t>(r.seq % capacity_)] = r;
  }
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest live record sits right after the most recently written slot.
    std::size_t head = static_cast<std::size_t>(seq_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t SpanRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

Span::Span(SpanRing* ring, const char* name, Histogram* hist)
    : ring_(ring), hist_(hist), name_(name), open_(ring != nullptr ||
                                                  hist != nullptr) {
  if (!open_) return;
  depth_ = t_span_depth++;
  if (ring_ != nullptr) {
    start_s_ = ring_->now_seconds();
  } else {
    t0_ = std::chrono::steady_clock::now();
  }
}

void Span::finish() {
  if (!open_) return;
  open_ = false;
  --t_span_depth;
  double dur;
  if (ring_ != nullptr) {
    dur = ring_->now_seconds() - start_s_;
    ring_->push(name_, start_s_, dur, depth_);
  } else {
    dur = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
              .count();
  }
  observe(hist_, dur);
}

}  // namespace anr::obs
