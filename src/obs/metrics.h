// Low-overhead observability primitives (metrics side).
//
// The planning/runtime stack is instrumented with three metric kinds —
// Counter, Gauge, and Histogram — owned by a Registry and updated through
// plain pointers. The hot-path contract:
//
//   - updates are lock-free: counters and histogram buckets are relaxed
//     atomics, gauges a CAS loop; no mutex is ever taken on record;
//   - handles are resolved once (at component construction) and cached,
//     so the per-event cost is one null check plus one atomic RMW;
//   - a disabled registry hands out nullptr handles, and the obs::inc /
//     obs::observe / obs::set helpers no-op on nullptr — instrumentation
//     is compiled in but costs a single predictable branch when off.
//
// NullRegistry is the disabled sink: every resolve returns nullptr.
// bench/bench_hotpath compares a full plan against a live Registry vs a
// NullRegistry to keep the "<2% overhead" claim measurable.
//
// Registration (name + labels -> handle) takes a mutex; it is expected at
// setup time, not per event. The same (name, labels) pair always resolves
// to the same handle, so concurrent resolvers share one atomic cell.
// Exposition lives in io/metrics_io (Prometheus text + NDJSON) on top of
// Registry::snapshot().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/span.h"

namespace anr::obs {

/// Monotone event count. Relaxed atomic increments only.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous value (queue depth, resident entries). Set/add via
/// atomics; add uses a CAS loop (no atomic<double>::fetch_add dependence).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log-spaced bucket layout: finite bucket i covers
/// (min * factor^(i-1), min * factor^i]; values <= min land in bucket 0,
/// values beyond the last bound in the implicit overflow (+Inf) bucket.
/// The default spans 1 microsecond to ~268 seconds at factor 2.
struct HistogramSpec {
  double min = 1e-6;
  double factor = 2.0;
  int buckets = 28;  ///< finite buckets (the +Inf bucket is extra)
};

/// Latency histogram over fixed log buckets. observe() is lock-free: one
/// log() call to find the bucket, then relaxed atomic increments (bucket,
/// count) and a CAS-loop sum update.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {});

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const HistogramSpec& spec() const { return spec_; }
  /// Upper bounds of the finite buckets (ascending).
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  int bucket_of(double v) const;

  HistogramSpec spec_;
  double inv_log_factor_ = 0.0;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // buckets + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double payload, CAS-added
};

/// Metric labels, e.g. {{"stage", "extraction"}}. Order-insensitive for
/// identity (canonicalized by key on registration).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Stable lowercase name ("counter", ...).
const char* metric_type_name(MetricType type);

/// Point-in-time copy of one metric, the exposition input.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;                       ///< canonical (key-sorted)
  double value = 0.0;                  ///< counter / gauge
  std::vector<double> bounds;          ///< histogram finite upper bounds
  std::vector<std::uint64_t> buckets;  ///< per-bucket; last is +Inf
  double sum = 0.0;                    ///< histogram
  std::uint64_t count = 0;             ///< histogram
};

/// Owns metrics and a span ring; hands out stable handles. Thread-safe.
/// Resolution (counter()/gauge()/histogram()) registers on first use and
/// returns the same handle for the same (name, labels) thereafter; a
/// type conflict on an existing name throws ContractViolation.
class Registry {
 public:
  Registry() : Registry(/*enabled=*/true) {}

  Counter* counter(std::string_view name, const Labels& labels = {},
                   std::string_view help = {});
  Gauge* gauge(std::string_view name, const Labels& labels = {},
               std::string_view help = {});
  Histogram* histogram(std::string_view name, const Labels& labels = {},
                       std::string_view help = {}, HistogramSpec spec = {});

  /// The span ring (nullptr when disabled).
  SpanRing* spans() { return enabled_ ? &spans_ : nullptr; }

  /// True for a live registry, false for NullRegistry.
  bool enabled() const { return enabled_; }

  /// Snapshot of every registered metric, in registration order (samples
  /// of one family are therefore contiguous when registered together).
  std::vector<MetricSnapshot> snapshot() const;

  /// Completed spans currently in the ring, oldest first.
  std::vector<SpanRecord> span_snapshot() const { return spans_.snapshot(); }

 protected:
  explicit Registry(bool enabled);

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* resolve(std::string_view name, const Labels& labels,
                 std::string_view help, MetricType type, HistogramSpec spec);

  const bool enabled_;
  mutable std::mutex mu_;                 // registration + snapshot only
  std::deque<Entry> entries_;             // stable addresses
  std::map<std::string, std::size_t> index_;  // canonical key -> entry
  SpanRing spans_;
};

/// The no-op sink: a Registry whose resolves all return nullptr, so every
/// record site reduces to a single untaken branch. Instrument against a
/// NullRegistry (or a plain nullptr Registry*) to measure the disabled
/// cost — bench_hotpath does exactly that.
class NullRegistry : public Registry {
 public:
  NullRegistry() : Registry(/*enabled=*/false) {}
};

/// Null-tolerant record helpers: the instrumentation call sites.
inline void inc(Counter* c, std::uint64_t d = 1) {
  if (c != nullptr) c->inc(d);
}
inline void set(Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}
inline void add(Gauge* g, double d) {
  if (g != nullptr) g->add(d);
}
inline void observe(Histogram* h, double v) {
  if (h != nullptr) h->observe(v);
}

}  // namespace anr::obs
