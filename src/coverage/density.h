// Density functions for centroidal Voronoi coverage (paper Sec. IV-E).
//
// "We can encode sensing policies or task requirements into the
// computation of the centroid of a Voronoi region … more robots will be
// deployed near the center of a fire with higher temperature."
#pragma once

#include <functional>

#include "foi/foi.h"

namespace anr {

/// Nonnegative weight over the FoI; centroids are computed with respect
/// to this measure.
using DensityFn = std::function<double(Vec2)>;

/// Uniform density (classic CVT / equilateral-lattice coverage).
DensityFn uniform_density();

/// Density that grows toward hole boundaries: weight =
/// 1 + gain * exp(-distance_to_nearest_hole / falloff). Reproduces the
/// Fig. 6 requirement "the closer to the hole, the more mobile robots".
DensityFn hole_proximity_density(const FieldOfInterest& foi, double gain,
                                 double falloff);

/// Radial hot-spot density (fire model): weight =
/// 1 + gain * exp(-|p - center|^2 / (2 sigma^2)).
DensityFn hotspot_density(Vec2 center, double gain, double sigma);

}  // namespace anr
