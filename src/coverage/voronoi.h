// Exact clipped Voronoi cells (reference implementation).
//
// Cell of a site = FoI outer polygon clipped by the perpendicular-bisector
// half-planes against every other site. Exact and fast for hole-free FoIs;
// holes are *not* subtracted here (polygon boolean subtraction is out of
// scope) — the grid-based CVT in grid_cvt handles holes and densities and
// is validated against this implementation on hole-free convex FoIs.
#pragma once

#include <vector>

#include "foi/foi.h"
#include "geom/polygon.h"

namespace anr {

/// Voronoi cell polygons of `sites` clipped to `boundary`. Sites outside
/// the boundary get whatever (possibly empty) polygon the clipping yields.
std::vector<Polygon> clipped_voronoi_cells(const std::vector<Vec2>& sites,
                                           const Polygon& boundary);

/// Uniform-density centroids of the clipped cells; a site with an empty
/// cell keeps its position.
std::vector<Vec2> voronoi_centroids(const std::vector<Vec2>& sites,
                                    const Polygon& boundary);

}  // namespace anr
