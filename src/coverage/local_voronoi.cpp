#include "coverage/local_voronoi.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "geom/polygon_clip.h"
#include "net/unit_disk_graph.h"

namespace anr {

LocalVoronoiLloyd::LocalVoronoiLloyd(FieldOfInterest foi, DensityFn density,
                                     double comm_range, int samples_per_cell)
    : foi_(std::move(foi)),
      density_(std::move(density)),
      r_c_(comm_range),
      samples_per_cell_(samples_per_cell),
      uniform_density_(!density_) {
  ANR_CHECK(r_c_ > 0.0);
  ANR_CHECK(samples_per_cell_ >= 16);
  if (!density_) density_ = uniform_density();
}

Vec2 LocalVoronoiLloyd::cell_centroid(const Polygon& cell, Vec2 fallback) const {
  if (cell.size() < 3 || cell.area() < 1e-9) return fallback;

  // Fast path: uniform density, hole-free FoI — exact polygon centroid.
  if (uniform_density_ && !foi_.has_holes()) {
    Vec2 c = cell.centroid();
    return foi_.contains(c) ? c : foi_.clamp_inside(c);
  }

  // General path: integrate the density over a local sample lattice
  // restricted to the cell minus holes (the robot's "local grid points").
  BBox bb = cell.bbox();
  double h = std::sqrt(std::max(cell.area(), 1e-9) /
                       static_cast<double>(samples_per_cell_));
  Vec2 acc{};
  double mass = 0.0;
  for (double y = bb.lo.y + h / 2.0; y <= bb.hi.y; y += h) {
    for (double x = bb.lo.x + h / 2.0; x <= bb.hi.x; x += h) {
      Vec2 p{x, y};
      if (!cell.contains(p) || !foi_.contains(p)) continue;
      double w = density_(p);
      acc += p * w;
      mass += w;
    }
  }
  if (mass <= 0.0) return fallback;
  Vec2 c = acc / mass;
  // Sec. III-D-3: a centroid inside a hole snaps to the hole boundary.
  return foi_.contains(c) ? c : foi_.clamp_inside(c);
}

LocalLloydStep LocalVoronoiLloyd::step(const std::vector<Vec2>& robots) const {
  const std::size_t n = robots.size();
  ANR_CHECK(n >= 1);

  // Robots outside the region compute their cell from the nearest
  // placeable point (they are marching in, Sec. III-D-1).
  std::vector<Vec2> inside(n);
  for (std::size_t i = 0; i < n; ++i) inside[i] = foi_.clamp_inside(robots[i]);

  auto adj = net::unit_disk_adjacency(inside, r_c_);
  LocalLloydStep out;
  out.centroids.resize(n);
  // Two beacon rounds: 1-hop positions, then forwarded neighbor lists.
  for (const auto& nb : adj) out.messages += 2 * nb.size();

  for (std::size_t i = 0; i < n; ++i) {
    // Two-hop neighborhood.
    std::set<int> two_hop;
    for (int u : adj[i]) {
      two_hop.insert(u);
      for (int w : adj[static_cast<std::size_t>(u)]) {
        if (w != static_cast<int>(i)) two_hop.insert(w);
      }
    }
    Polygon cell = foi_.outer();
    for (int u : two_hop) {
      if (cell.size() < 3) break;
      Vec2 other = inside[static_cast<std::size_t>(u)];
      if (distance2(inside[i], other) == 0.0) continue;
      cell = clip(cell, bisector_half_plane(inside[i], other));
    }
    out.centroids[i] = cell_centroid(cell, inside[i]);
  }
  return out;
}

LocalVoronoiLloyd::RunResult LocalVoronoiLloyd::run(std::vector<Vec2> robots,
                                                    double tol,
                                                    int max_steps) const {
  RunResult out;
  out.positions = std::move(robots);
  for (out.steps = 0; out.steps < max_steps; ++out.steps) {
    LocalLloydStep s = step(out.positions);
    out.messages += s.messages;
    double max_move = 0.0;
    for (std::size_t i = 0; i < out.positions.size(); ++i) {
      max_move = std::max(max_move, distance(out.positions[i], s.centroids[i]));
    }
    out.positions = std::move(s.centroids);
    if (max_move <= tol) {
      out.converged = true;
      ++out.steps;
      break;
    }
  }
  return out;
}

}  // namespace anr
