#include "coverage/local_voronoi.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/polygon_clip.h"
#include "net/unit_disk_graph.h"

namespace anr {

LocalVoronoiLloyd::LocalVoronoiLloyd(FieldOfInterest foi, DensityFn density,
                                     double comm_range, int samples_per_cell)
    : foi_(std::move(foi)),
      density_(std::move(density)),
      r_c_(comm_range),
      samples_per_cell_(samples_per_cell),
      uniform_density_(!density_) {
  ANR_CHECK(r_c_ > 0.0);
  ANR_CHECK(samples_per_cell_ >= 16);
  if (!density_) density_ = uniform_density();
}

Vec2 LocalVoronoiLloyd::cell_centroid(const Polygon& cell, Vec2 fallback) const {
  if (cell.size() < 3 || cell.area() < 1e-9) return fallback;

  // Fast path: uniform density, hole-free FoI — exact polygon centroid.
  if (uniform_density_ && !foi_.has_holes()) {
    Vec2 c = cell.centroid();
    return foi_.contains(c) ? c : foi_.clamp_inside(c);
  }

  // General path: integrate the density over a local sample lattice
  // restricted to the cell minus holes (the robot's "local grid points").
  BBox bb = cell.bbox();
  double h = std::sqrt(std::max(cell.area(), 1e-9) /
                       static_cast<double>(samples_per_cell_));
  Vec2 acc{};
  double mass = 0.0;
  for (double y = bb.lo.y + h / 2.0; y <= bb.hi.y; y += h) {
    for (double x = bb.lo.x + h / 2.0; x <= bb.hi.x; x += h) {
      Vec2 p{x, y};
      if (!cell.contains(p) || !foi_.contains(p)) continue;
      double w = density_(p);
      acc += p * w;
      mass += w;
    }
  }
  if (mass <= 0.0) return fallback;
  Vec2 c = acc / mass;
  // Sec. III-D-3: a centroid inside a hole snaps to the hole boundary.
  return foi_.contains(c) ? c : foi_.clamp_inside(c);
}

LocalLloydStep LocalVoronoiLloyd::step(const std::vector<Vec2>& robots) const {
  Scratch scratch;
  LocalLloydStep out;
  step_into(robots, scratch, out);
  return out;
}

void LocalVoronoiLloyd::step_into(const std::vector<Vec2>& robots,
                                  Scratch& scratch, LocalLloydStep& out) const {
  const std::size_t n = robots.size();
  ANR_CHECK(n >= 1);

  // Robots outside the region compute their cell from the nearest
  // placeable point (they are marching in, Sec. III-D-1).
  scratch.inside.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.inside[i] = foi_.clamp_inside(robots[i]);
  }
  const std::vector<Vec2>& inside = scratch.inside;

  auto adj = net::unit_disk_adjacency(inside, r_c_);
  out.messages = 0;
  out.centroids.resize(n);
  // Two beacon rounds: 1-hop positions, then forwarded neighbor lists.
  for (const auto& nb : adj) out.messages += 2 * nb.size();

  // Stamp-marked two-hop gather: sorted afterwards so the clipping order
  // matches the std::set iteration it replaced (ascending robot id),
  // keeping results byte-identical while dropping the per-robot node
  // allocations.
  scratch.mark.assign(n, 0);
  scratch.stamp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int stamp = ++scratch.stamp;
    scratch.two_hop.clear();
    for (int u : adj[i]) {
      if (scratch.mark[static_cast<std::size_t>(u)] != stamp) {
        scratch.mark[static_cast<std::size_t>(u)] = stamp;
        scratch.two_hop.push_back(u);
      }
      for (int w : adj[static_cast<std::size_t>(u)]) {
        if (w == static_cast<int>(i)) continue;
        if (scratch.mark[static_cast<std::size_t>(w)] != stamp) {
          scratch.mark[static_cast<std::size_t>(w)] = stamp;
          scratch.two_hop.push_back(w);
        }
      }
    }
    std::sort(scratch.two_hop.begin(), scratch.two_hop.end());
    Polygon cell = foi_.outer();
    for (int u : scratch.two_hop) {
      if (cell.size() < 3) break;
      Vec2 other = inside[static_cast<std::size_t>(u)];
      if (distance2(inside[i], other) == 0.0) continue;
      cell = clip(cell, bisector_half_plane(inside[i], other));
    }
    out.centroids[i] = cell_centroid(cell, inside[i]);
  }
}

LocalVoronoiLloyd::RunResult LocalVoronoiLloyd::run(std::vector<Vec2> robots,
                                                    double tol,
                                                    int max_steps) const {
  RunResult out;
  out.positions = std::move(robots);
  Scratch scratch;
  LocalLloydStep s;
  for (out.steps = 0; out.steps < max_steps; ++out.steps) {
    step_into(out.positions, scratch, s);
    out.messages += s.messages;
    double max_move = 0.0;
    for (std::size_t i = 0; i < out.positions.size(); ++i) {
      max_move = std::max(max_move, distance(out.positions[i], s.centroids[i]));
    }
    out.positions = std::move(s.centroids);
    if (max_move <= tol) {
      out.converged = true;
      ++out.steps;
      break;
    }
  }
  return out;
}

}  // namespace anr
