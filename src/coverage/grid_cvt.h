// Discrete (grid-based) Voronoi centroids over a FoI.
//
// The paper computes centroids "with respect to a given density function"
// and, for FoIs with holes, snaps centroids that fall into a hole to "the
// nearest grid point along the hole boundary" (Sec. III-D-3). A dense
// sample grid over the FoI makes all of that uniform: a site's Voronoi
// region is the set of samples nearest to it; its centroid is the
// density-weighted sample mean; snapping is a nearest-sample query.
#pragma once

#include <memory>
#include <vector>

#include "coverage/density.h"
#include "foi/foi.h"
#include "geom/grid_index.h"

namespace anr {

/// Precomputed sample grid + density over a FoI. Immutable after
/// construction; Lloyd iterations share one instance.
class GridCvt {
 public:
  /// Samples the FoI on a triangular lattice of roughly `target_samples`
  /// points and evaluates `density` at each.
  GridCvt(const FieldOfInterest& foi, DensityFn density,
          int target_samples = 30000);

  /// Reusable workspace for centroids_into. The site index and the
  /// accumulator arrays persist across Lloyd steps, so repeated calls at
  /// steady state do not allocate. Each concurrent caller owns its own
  /// Scratch (GridCvt itself stays immutable and shareable).
  struct Scratch {
    GridIndex site_index;
    std::vector<Vec2> acc;
    std::vector<double> mass;
    /// Per-sample nearest-site assignment, filled in parallel (pure
    /// element-wise writes), then accumulated serially in sample order.
    /// O(samples) — independent of the site count, unlike the per-chunk
    /// partial-sum layout it replaced (O(chunks x sites), which blew up
    /// exactly when both were large).
    std::vector<int> site_of;
  };

  /// Density-weighted centroid of each site's discrete Voronoi region.
  /// A site whose region captures no sample keeps its position. Centroids
  /// landing outside the FoI (possible for concave regions/holes) are
  /// snapped to the nearest sample point.
  std::vector<Vec2> centroids(const std::vector<Vec2>& sites) const;

  /// As centroids(), writing into `out` (cleared first) and reusing
  /// `scratch` across calls.
  void centroids_into(const std::vector<Vec2>& sites, Scratch& scratch,
                      std::vector<Vec2>& out) const;

  /// Nearest sample point to p (the paper's "nearest grid point").
  Vec2 nearest_sample(Vec2 p) const;

  const std::vector<Vec2>& samples() const { return samples_; }
  const FieldOfInterest& foi() const { return foi_; }
  double spacing() const { return spacing_; }

 private:
  FieldOfInterest foi_;
  std::vector<Vec2> samples_;
  std::vector<double> weight_;
  std::unique_ptr<GridIndex> sample_index_;
  double spacing_ = 0.0;
};

}  // namespace anr
