// Lloyd iterations toward a centroidal Voronoi tessellation
// (paper Sec. III-C).
//
// "At each step, a mobile robot … computes its corresponding Voronoi
// region and the centroid … then moves to the centroid position."
// Newman's hexagon theorem makes the converged layout the equilateral-
// triangle lattice the coverage literature proves optimal.
#pragma once

#include "coverage/grid_cvt.h"

namespace anr {

struct LloydOptions {
  int max_iters = 300;
  /// Convergence threshold on the largest site move per iteration, in
  /// world units (meters).
  double tol = 0.5;
};

struct LloydResult {
  std::vector<Vec2> positions;
  int iters = 0;
  double final_move = 0.0;
  bool converged = false;
};

/// Runs Lloyd on `sites` over the precomputed grid.
LloydResult lloyd(const GridCvt& grid, std::vector<Vec2> sites,
                  const LloydOptions& opt = {});

/// Optimal coverage positions for n robots in `foi`: seeded scatter
/// (deterministic in `seed`) + Lloyd to convergence. This is what the
/// baselines assume precomputed (paper Sec. IV) and what the minor-
/// adjustment phase converges toward.
LloydResult optimal_coverage_positions(const FieldOfInterest& foi, int n,
                                       std::uint64_t seed,
                                       const DensityFn& density,
                                       const LloydOptions& opt = {});

}  // namespace anr
