// Coverage evaluation: does a deployment actually cover the FoI?
//
// The paper's premise (Sec. II, Lemma 1 discussion): with the disk
// sensing model and r_c >= sqrt(3) * r_s, the triangular-lattice layout
// reached by the CVT adjustment gives complete area coverage. This module
// measures that claim: the fraction of the FoI within sensing range of
// some robot, the k-coverage histogram, and the largest uncovered gap.
#pragma once

#include <vector>

#include "foi/foi.h"

namespace anr {

struct CoverageReport {
  /// Fraction of sampled FoI area within r_s of at least one robot.
  double covered_fraction = 0.0;
  /// Fraction covered by at least k robots, k = 1..4 (index 0 = k=1).
  double k_covered_fraction[4] = {0.0, 0.0, 0.0, 0.0};
  /// Largest distance from any FoI sample to its nearest robot.
  double worst_gap = 0.0;
  /// Mean distance from a FoI sample to its nearest robot.
  double mean_gap = 0.0;
  int samples = 0;
};

/// Evaluates `robots` covering `foi` with sensing radius `r_s`, sampling
/// the region on a lattice of roughly `target_samples` points.
CoverageReport evaluate_coverage(const FieldOfInterest& foi,
                                 const std::vector<Vec2>& robots, double r_s,
                                 int target_samples = 20000);

/// The paper's sensing radius for a given communication range under the
/// r_c >= sqrt(3) * r_s coverage-connectivity assumption (Sec. II-A).
double sensing_radius_for(double r_c);

}  // namespace anr
