#include "coverage/lloyd.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace anr {

LloydResult lloyd(const GridCvt& grid, std::vector<Vec2> sites,
                  const LloydOptions& opt) {
  ANR_CHECK(!sites.empty());
  LloydResult out;
  out.positions = std::move(sites);
  GridCvt::Scratch scratch;  // shared across iterations: no per-step allocs
  std::vector<Vec2> next;
  for (out.iters = 0; out.iters < opt.max_iters; ++out.iters) {
    grid.centroids_into(out.positions, scratch, next);
    double max_move = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      max_move = std::max(max_move, distance(next[i], out.positions[i]));
    }
    std::swap(out.positions, next);
    out.final_move = max_move;
    if (max_move <= opt.tol) {
      out.converged = true;
      ++out.iters;
      break;
    }
  }
  return out;
}

LloydResult optimal_coverage_positions(const FieldOfInterest& foi, int n,
                                       std::uint64_t seed,
                                       const DensityFn& density,
                                       const LloydOptions& opt) {
  ANR_CHECK(n >= 1);
  Rng rng(seed);
  GridCvt grid(foi, density);
  std::vector<Vec2> sites;
  sites.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) sites.push_back(foi.sample_point(rng));
  return lloyd(grid, std::move(sites), opt);
}

}  // namespace anr
