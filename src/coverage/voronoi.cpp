#include "coverage/voronoi.h"

#include "geom/polygon_clip.h"

namespace anr {

std::vector<Polygon> clipped_voronoi_cells(const std::vector<Vec2>& sites,
                                           const Polygon& boundary) {
  std::vector<Polygon> cells;
  cells.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    Polygon cell = boundary;
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (i == j || cell.size() < 3) continue;
      if (distance2(sites[i], sites[j]) == 0.0) continue;  // coincident sites
      cell = clip(cell, bisector_half_plane(sites[i], sites[j]));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<Vec2> voronoi_centroids(const std::vector<Vec2>& sites,
                                    const Polygon& boundary) {
  auto cells = clipped_voronoi_cells(sites, boundary);
  std::vector<Vec2> out;
  out.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (cells[i].size() >= 3 && cells[i].area() > 1e-12) {
      out.push_back(cells[i].centroid());
    } else {
      out.push_back(sites[i]);
    }
  }
  return out;
}

}  // namespace anr
