// Robot-local (distributed) Lloyd step — the paper's Sec. III-C verbatim:
//
// "At each step, a mobile robot collects the position information of its
// two-range neighbors, computing its corresponding Voronoi region and the
// centroid of the Voronoi region. The mobile robot then moves to the
// centroid position."
//
// Each robot clips the FoI outer polygon (the map every robot carries,
// Sec. I) by the perpendicular bisectors against its two-hop neighbors
// only. In the dense deployments this library produces, two hops dominate
// the true Voronoi cell, so the local step matches the global one — the
// equivalence is asserted in tests. Density weighting and hole handling
// (Sec. III-D-3: snap a centroid that falls into a hole to the nearest
// grid point along the hole boundary) are evaluated on a per-cell local
// sample grid.
#pragma once

#include <cstddef>

#include "coverage/density.h"
#include "foi/foi.h"

namespace anr {

struct LocalLloydStep {
  std::vector<Vec2> centroids;  ///< per robot, the move target
  std::size_t messages = 0;     ///< two beacon rounds over the UDG links
};

/// Computes one distributed Lloyd step over the robots inside `foi`.
class LocalVoronoiLloyd {
 public:
  /// `samples_per_cell` controls the per-cell integration grid used when
  /// the cell is density-weighted or intersects a hole; hole-free uniform
  /// cells use the exact polygon centroid.
  LocalVoronoiLloyd(FieldOfInterest foi, DensityFn density, double comm_range,
                    int samples_per_cell = 300);

  /// Reusable workspace for step_into: the two-hop gather buffers persist
  /// across Lloyd steps so steady-state iterations stop allocating per
  /// robot (the previous implementation built a std::set per robot per
  /// step). Each concurrent caller owns its own Scratch.
  struct Scratch {
    std::vector<Vec2> inside;
    std::vector<int> mark;     ///< per-robot visit stamp
    std::vector<int> two_hop;  ///< gathered neighborhood, sorted per robot
    int stamp = 0;
  };

  /// One step. Robots outside the FoI are first pulled to the nearest
  /// placeable point (their cell is computed from there).
  LocalLloydStep step(const std::vector<Vec2>& robots) const;

  /// As step(), reusing `scratch` across calls.
  void step_into(const std::vector<Vec2>& robots, Scratch& scratch,
                 LocalLloydStep& out) const;

  /// Runs steps until the largest move is below `tol` or `max_steps`.
  struct RunResult {
    std::vector<Vec2> positions;
    int steps = 0;
    std::size_t messages = 0;
    bool converged = false;
  };
  RunResult run(std::vector<Vec2> robots, double tol = 0.5,
                int max_steps = 100) const;

  const FieldOfInterest& foi() const { return foi_; }

 private:
  Vec2 cell_centroid(const Polygon& cell, Vec2 fallback) const;

  FieldOfInterest foi_;
  DensityFn density_;
  double r_c_;
  int samples_per_cell_;
  bool uniform_density_;
};

}  // namespace anr
