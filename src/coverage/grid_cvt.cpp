#include "coverage/grid_cvt.h"

#include <cmath>

#include "common/check.h"
#include "common/task_arena.h"

namespace anr {

GridCvt::GridCvt(const FieldOfInterest& foi, DensityFn density,
                 int target_samples)
    : foi_(foi) {
  ANR_CHECK(target_samples >= 64);
  double area = foi.area();
  spacing_ = std::sqrt(2.0 * area /
                       (std::sqrt(3.0) * static_cast<double>(target_samples)));
  samples_ = foi.lattice_points(spacing_);
  ANR_CHECK_MSG(samples_.size() >= 16, "FoI too small for CVT sampling");
  weight_.reserve(samples_.size());
  for (Vec2 p : samples_) {
    double w = density(p);
    ANR_CHECK_MSG(w >= 0.0, "density must be nonnegative");
    weight_.push_back(w);
  }
  sample_index_ = std::make_unique<GridIndex>(samples_, spacing_);
}

std::vector<Vec2> GridCvt::centroids(const std::vector<Vec2>& sites) const {
  Scratch scratch;
  std::vector<Vec2> out;
  centroids_into(sites, scratch, out);
  return out;
}

void GridCvt::centroids_into(const std::vector<Vec2>& sites, Scratch& scratch,
                             std::vector<Vec2>& out) const {
  ANR_CHECK(!sites.empty());
  // Nearest-site assignment via a site index: for each sample, query the
  // site index outward. The parallel phase only writes each sample's own
  // `site_of` slot (no shared accumulators), so it is trivially
  // deterministic at any parallelism level; the floating-point centroid
  // sums then accumulate serially in fixed sample order. This keeps the
  // workspace O(samples + sites) — the previous per-chunk partial-sum
  // layout was O(chunks x sites), quadratic-ish when sites scale with
  // samples (10k+ robots).
  scratch.site_index.rebuild(sites, std::max(spacing_ * 4.0, 1e-9));
  const std::size_t kGrain = 2048;
  const std::size_t nsites = sites.size();
  scratch.site_of.resize(samples_.size());
  parallel_chunks(samples_.size(), kGrain,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      int site = scratch.site_index.nearest(samples_[s]);
      ANR_CHECK(site >= 0);
      scratch.site_of[s] = site;
    }
  });
  scratch.acc.assign(nsites, Vec2{});
  scratch.mass.assign(nsites, 0.0);
  for (std::size_t s = 0; s < samples_.size(); ++s) {
    const std::size_t site = static_cast<std::size_t>(scratch.site_of[s]);
    scratch.acc[site] += samples_[s] * weight_[s];
    scratch.mass[site] += weight_[s];
  }
  out.clear();
  out.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (scratch.mass[i] <= 0.0) {
      out.push_back(sites[i]);
      continue;
    }
    Vec2 c = scratch.acc[i] / scratch.mass[i];
    if (!foi_.contains(c)) c = nearest_sample(c);
    out.push_back(c);
  }
}

Vec2 GridCvt::nearest_sample(Vec2 p) const {
  int idx = sample_index_->nearest(p);
  ANR_CHECK(idx >= 0);
  return samples_[static_cast<std::size_t>(idx)];
}

}  // namespace anr
