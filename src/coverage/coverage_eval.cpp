#include "coverage/coverage_eval.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/grid_index.h"

namespace anr {

double sensing_radius_for(double r_c) {
  ANR_CHECK(r_c > 0.0);
  return r_c / std::sqrt(3.0);
}

CoverageReport evaluate_coverage(const FieldOfInterest& foi,
                                 const std::vector<Vec2>& robots, double r_s,
                                 int target_samples) {
  ANR_CHECK(!robots.empty());
  ANR_CHECK(r_s > 0.0);
  ANR_CHECK(target_samples >= 64);

  double h = std::sqrt(2.0 * foi.area() /
                       (std::sqrt(3.0) * static_cast<double>(target_samples)));
  auto samples = foi.lattice_points(h);
  ANR_CHECK_MSG(!samples.empty(), "FoI too small to sample");

  GridIndex index(robots, r_s);
  CoverageReport rep;
  rep.samples = static_cast<int>(samples.size());
  long covered_at_least[4] = {0, 0, 0, 0};
  double gap_sum = 0.0;
  for (Vec2 s : samples) {
    int k = static_cast<int>(index.query_radius(s, r_s).size());
    for (int i = 0; i < 4; ++i) {
      if (k >= i + 1) ++covered_at_least[i];
    }
    int nearest = index.nearest(s);
    double gap = distance(s, robots[static_cast<std::size_t>(nearest)]);
    rep.worst_gap = std::max(rep.worst_gap, gap);
    gap_sum += gap;
  }
  for (int i = 0; i < 4; ++i) {
    rep.k_covered_fraction[i] = static_cast<double>(covered_at_least[i]) /
                                static_cast<double>(samples.size());
  }
  rep.covered_fraction = rep.k_covered_fraction[0];
  rep.mean_gap = gap_sum / static_cast<double>(samples.size());
  return rep;
}

}  // namespace anr
