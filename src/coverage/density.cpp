#include "coverage/density.h"

#include <cmath>

#include "common/check.h"

namespace anr {

DensityFn uniform_density() {
  return [](Vec2) { return 1.0; };
}

DensityFn hole_proximity_density(const FieldOfInterest& foi, double gain,
                                 double falloff) {
  ANR_CHECK(gain >= 0.0 && falloff > 0.0);
  // Capture by value: the FoI owns its polygons, so copies stay valid for
  // the lifetime of the returned closure.
  return [foi, gain, falloff](Vec2 p) {
    double d = foi.distance_to_nearest_hole(p);
    if (!std::isfinite(d)) return 1.0;
    return 1.0 + gain * std::exp(-d / falloff);
  };
}

DensityFn hotspot_density(Vec2 center, double gain, double sigma) {
  ANR_CHECK(gain >= 0.0 && sigma > 0.0);
  return [center, gain, sigma](Vec2 p) {
    double d2 = distance2(p, center);
    return 1.0 + gain * std::exp(-d2 / (2.0 * sigma * sigma));
  };
}

}  // namespace anr
