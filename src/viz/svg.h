// Minimal SVG writer for pipeline visualization.
//
// The paper's Figs. 2, 3, 5, 6 are pictures of FoIs, connectivity graphs,
// triangulations, and deployments with preserved links in blue and new
// links in red. SvgCanvas renders the same artifacts so every example can
// drop paper-style figures next to its numeric output.
#pragma once

#include <string>
#include <vector>

#include "foi/foi.h"
#include "geom/polygon.h"
#include "geom/vec2.h"
#include "march/trajectory.h"
#include "mesh/triangle_mesh.h"
#include "terrain/fast_marching.h"

namespace anr {

/// Stroke/fill style for SVG primitives.
struct SvgStyle {
  std::string stroke = "#222222";
  double stroke_width = 1.0;
  std::string fill = "none";
  double opacity = 1.0;
};

/// Accumulates SVG elements in world coordinates; `str()`/`save()` emit a
/// complete document with a fitted viewBox (y flipped so world +y is up).
class SvgCanvas {
 public:
  /// `margin` is world-space padding around the drawn content.
  explicit SvgCanvas(double margin = 20.0) : margin_(margin) {}

  void line(Vec2 a, Vec2 b, const SvgStyle& style = {});
  void polyline(const std::vector<Vec2>& pts, const SvgStyle& style = {});
  void circle(Vec2 center, double radius, const SvgStyle& style = {});
  void polygon(const Polygon& poly, const SvgStyle& style = {});
  void text(Vec2 anchor, const std::string& label, double size = 12.0,
            const std::string& color = "#222222");

  // Composite helpers used by the examples and benches.

  /// Outer boundary solid, holes hatched gray.
  void foi(const FieldOfInterest& region, const std::string& color = "#555555");

  /// Terrain cost field as a cell heat layer: cells costlier than the
  /// minimum shaded brown (opacity scaled by relative cost), keep-out
  /// cells dark red. Draw this first so the plan layers stay on top.
  void cost_field(const CostField& field);

  /// All mesh edges.
  void mesh(const TriangleMesh& m, const SvgStyle& style = {});

  /// Robots as dots.
  void robots(const std::vector<Vec2>& pts, double radius = 3.0,
              const std::string& color = "#1f6fb2");

  /// Communication links, optionally split into preserved (blue) and new /
  /// broken (red) by a predicate — the paper's blue/red edge convention.
  void links(const std::vector<Vec2>& pts,
             const std::vector<std::pair<int, int>>& edges,
             const SvgStyle& style = {});

  /// Trajectories as faint polylines.
  void trajectories(const std::vector<Trajectory>& trajs,
                    const std::string& color = "#999999");

  /// Animated robots: one dot per trajectory that moves along its
  /// waypoints over `duration_seconds` of SVG (SMIL) animation time,
  /// looping forever. Open the file in a browser to watch the march.
  void animated_robots(const std::vector<Trajectory>& trajs,
                       double duration_seconds = 8.0, double radius = 3.0,
                       const std::string& color = "#b03a2e");

  /// Renders the SVG document.
  std::string str(double pixel_width = 900.0) const;

  /// Writes the document to `path`; returns false on I/O failure.
  bool save(const std::string& path, double pixel_width = 900.0) const;

 private:
  void expand(Vec2 p);
  std::string margin_note_;
  double margin_;
  BBox bounds_;
  std::vector<std::string> elements_;
};

}  // namespace anr
