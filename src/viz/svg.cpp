#include "viz/svg.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace anr {

namespace {

std::string attr(const SvgStyle& s) {
  std::ostringstream os;
  os << "stroke=\"" << s.stroke << "\" stroke-width=\"" << s.stroke_width
     << "\" fill=\"" << s.fill << "\" opacity=\"" << s.opacity << "\"";
  return os.str();
}

std::string points_attr(const std::vector<Vec2>& pts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) os << ' ';
    // Flip y: SVG's y axis points down.
    os << pts[i].x << ',' << -pts[i].y;
  }
  return os.str();
}

}  // namespace

void SvgCanvas::expand(Vec2 p) { bounds_.expand(p); }

void SvgCanvas::line(Vec2 a, Vec2 b, const SvgStyle& style) {
  expand(a);
  expand(b);
  std::ostringstream os;
  os << "<line x1=\"" << a.x << "\" y1=\"" << -a.y << "\" x2=\"" << b.x
     << "\" y2=\"" << -b.y << "\" " << attr(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::polyline(const std::vector<Vec2>& pts, const SvgStyle& style) {
  if (pts.size() < 2) return;
  for (Vec2 p : pts) expand(p);
  std::ostringstream os;
  os << "<polyline points=\"" << points_attr(pts) << "\" " << attr(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::circle(Vec2 center, double radius, const SvgStyle& style) {
  expand(center + Vec2{radius, radius});
  expand(center - Vec2{radius, radius});
  std::ostringstream os;
  os << "<circle cx=\"" << center.x << "\" cy=\"" << -center.y << "\" r=\""
     << radius << "\" " << attr(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::polygon(const Polygon& poly, const SvgStyle& style) {
  if (poly.size() < 3) return;
  for (Vec2 p : poly.points()) expand(p);
  std::ostringstream os;
  os << "<polygon points=\"" << points_attr(poly.points()) << "\" "
     << attr(style) << "/>";
  elements_.push_back(os.str());
}

void SvgCanvas::text(Vec2 anchor, const std::string& label, double size,
                     const std::string& color) {
  expand(anchor);
  std::ostringstream os;
  os << "<text x=\"" << anchor.x << "\" y=\"" << -anchor.y << "\" font-size=\""
     << size << "\" fill=\"" << color << "\">" << label << "</text>";
  elements_.push_back(os.str());
}

void SvgCanvas::foi(const FieldOfInterest& region, const std::string& color) {
  SvgStyle outer;
  outer.stroke = color;
  outer.stroke_width = 2.0;
  polygon(region.outer(), outer);
  SvgStyle hole;
  hole.stroke = color;
  hole.stroke_width = 1.5;
  hole.fill = "#cccccc";
  hole.opacity = 0.8;
  for (const Polygon& h : region.holes()) polygon(h, hole);
}

void SvgCanvas::cost_field(const CostField& field) {
  double max_cost = field.min_cost();
  for (double c : field.costs()) {
    if (c != CostField::kInf) max_cost = std::max(max_cost, c);
  }
  const double span = std::max(max_cost - field.min_cost(), 1e-12);
  const double half = field.cell_size() * 0.5;
  for (int i = 0; i < field.cell_count(); ++i) {
    const double c = field.cost(i);
    const bool blocked = c == CostField::kInf;
    if (!blocked && c <= field.min_cost()) continue;  // baseline: unshaded
    const Vec2 ctr = field.center(i);
    SvgStyle cell;
    cell.stroke = "none";
    if (blocked) {
      cell.fill = "#7a1f1f";
      cell.opacity = 0.8;
    } else {
      cell.fill = "#8a6d3b";
      cell.opacity = 0.1 + 0.5 * (c - field.min_cost()) / span;
    }
    polygon(make_rect({ctr.x - half, ctr.y - half},
                      {ctr.x + half, ctr.y + half}),
            cell);
  }
}

void SvgCanvas::mesh(const TriangleMesh& m, const SvgStyle& style) {
  for (const EdgeKey& e : m.edges()) {
    line(m.position(e.a), m.position(e.b), style);
  }
}

void SvgCanvas::robots(const std::vector<Vec2>& pts, double radius,
                       const std::string& color) {
  SvgStyle dot;
  dot.stroke = "none";
  dot.fill = color;
  for (Vec2 p : pts) circle(p, radius, dot);
}

void SvgCanvas::links(const std::vector<Vec2>& pts,
                      const std::vector<std::pair<int, int>>& edges,
                      const SvgStyle& style) {
  for (auto [i, j] : edges) {
    line(pts[static_cast<std::size_t>(i)], pts[static_cast<std::size_t>(j)],
         style);
  }
}

void SvgCanvas::trajectories(const std::vector<Trajectory>& trajs,
                             const std::string& color) {
  SvgStyle s;
  s.stroke = color;
  s.stroke_width = 0.8;
  s.opacity = 0.5;
  for (const Trajectory& t : trajs) {
    polyline(t.waypoints(), s);
  }
}

void SvgCanvas::animated_robots(const std::vector<Trajectory>& trajs,
                                double duration_seconds, double radius,
                                const std::string& color) {
  if (trajs.empty()) return;
  double t0 = trajs[0].start_time();
  double t1 = trajs[0].end_time();
  for (const Trajectory& t : trajs) {
    t0 = std::min(t0, t.start_time());
    t1 = std::max(t1, t.end_time());
  }
  double span = std::max(t1 - t0, 1e-9);

  for (const Trajectory& t : trajs) {
    if (t.empty()) continue;
    for (Vec2 p : t.waypoints()) expand(p);
    std::ostringstream os;
    Vec2 s = t.start();
    os << "<circle cx=\"" << s.x << "\" cy=\"" << -s.y << "\" r=\"" << radius
       << "\" fill=\"" << color << "\">";
    // keyTimes must start at 0 and end at 1: pad with the endpoints when
    // the trajectory does not span the whole timeline.
    std::ostringstream cx, cy, kt;
    auto emit = [&](Vec2 p, double time) {
      cx << p.x << ';';
      cy << -p.y << ';';
      kt << (time - t0) / span << ';';
    };
    if (t.start_time() > t0) emit(t.start(), t0);
    for (std::size_t i = 0; i < t.num_waypoints(); ++i) {
      emit(t.waypoints()[i], t.times()[i]);
    }
    if (t.end_time() < t1) emit(t.end(), t1);
    auto strip = [](std::ostringstream& o) {
      std::string v = o.str();
      v.pop_back();  // trailing ';'
      return v;
    };
    os << "<animate attributeName=\"cx\" dur=\"" << duration_seconds
       << "s\" repeatCount=\"indefinite\" calcMode=\"linear\" values=\""
       << strip(cx) << "\" keyTimes=\"" << strip(kt) << "\"/>";
    os << "<animate attributeName=\"cy\" dur=\"" << duration_seconds
       << "s\" repeatCount=\"indefinite\" calcMode=\"linear\" values=\""
       << strip(cy) << "\" keyTimes=\"" << strip(kt) << "\"/>";
    os << "</circle>";
    elements_.push_back(os.str());
  }
}

std::string SvgCanvas::str(double pixel_width) const {
  ANR_CHECK_MSG(bounds_.valid(), "empty SVG canvas");
  double x0 = bounds_.lo.x - margin_;
  double y0 = -bounds_.hi.y - margin_;  // flipped
  double w = bounds_.width() + 2.0 * margin_;
  double h = bounds_.height() + 2.0 * margin_;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << pixel_width
     << "\" height=\"" << pixel_width * h / w << "\" viewBox=\"" << x0 << " "
     << y0 << " " << w << " " << h << "\">\n";
  for (const std::string& e : elements_) os << "  " << e << "\n";
  os << "</svg>\n";
  return os.str();
}

bool SvgCanvas::save(const std::string& path, double pixel_width) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str(pixel_width);
  return static_cast<bool>(out);
}

}  // namespace anr
