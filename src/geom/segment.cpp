#include "geom/segment.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"

namespace anr {

namespace {

bool on_segment_collinear(Vec2 p, const Segment& s) {
  return p.x <= std::max(s.a.x, s.b.x) + 1e-12 &&
         p.x >= std::min(s.a.x, s.b.x) - 1e-12 &&
         p.y <= std::max(s.a.y, s.b.y) + 1e-12 &&
         p.y >= std::min(s.a.y, s.b.y) - 1e-12;
}

}  // namespace

bool segments_intersect(const Segment& s, const Segment& t) {
  int o1 = orientation(s.a, s.b, t.a);
  int o2 = orientation(s.a, s.b, t.b);
  int o3 = orientation(t.a, t.b, s.a);
  int o4 = orientation(t.a, t.b, s.b);

  if (o1 != o2 && o3 != o4) return true;

  if (o1 == 0 && on_segment_collinear(t.a, s)) return true;
  if (o2 == 0 && on_segment_collinear(t.b, s)) return true;
  if (o3 == 0 && on_segment_collinear(s.a, t)) return true;
  if (o4 == 0 && on_segment_collinear(s.b, t)) return true;
  return false;
}

std::optional<Vec2> segment_intersection(const Segment& s, const Segment& t) {
  Vec2 r = s.b - s.a;
  Vec2 q = t.b - t.a;
  double denom = r.cross(q);
  if (std::abs(denom) < 1e-18) return std::nullopt;  // parallel / collinear
  Vec2 d = t.a - s.a;
  double u = d.cross(q) / denom;
  double v = d.cross(r) / denom;
  const double eps = 1e-12;
  if (u < -eps || u > 1.0 + eps || v < -eps || v > 1.0 + eps) {
    return std::nullopt;
  }
  return s.a + r * std::clamp(u, 0.0, 1.0);
}

double closest_point_param(const Segment& s, Vec2 p) {
  Vec2 d = s.b - s.a;
  double len2 = d.norm2();
  if (len2 <= 0.0) return 0.0;
  return std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
}

Vec2 closest_point(const Segment& s, Vec2 p) {
  return lerp(s.a, s.b, closest_point_param(s, p));
}

double point_segment_distance(Vec2 p, const Segment& s) {
  return distance(p, closest_point(s, p));
}

}  // namespace anr
