// Uniform spatial hash grid over points.
//
// Workhorse for neighbor queries: unit-disk graph construction
// (all pairs within r_c), nearest-grid-point snapping when a robot maps
// into a hole, and point location acceleration in the disk domain.
//
// Layout: flat CSR buckets over the dense cell range of the data's
// bounding box — one counting-sort build, no per-cell heap nodes, no
// hashing on the query path. Queries visit points in (cx asc, cy asc,
// point id asc) order, matching the historical hash-map implementation
// bucket for bucket, so tie-breaking behavior is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.h"

namespace anr {

/// Spatial index over a fixed point set. Cell size should be on the order
/// of the typical query radius.
class GridIndex {
 public:
  /// Empty index; use rebuild() to populate.
  GridIndex() = default;

  /// Builds the index over `pts` with the given cell size (> 0).
  GridIndex(std::vector<Vec2> pts, double cell_size);

  /// Rebuilds over a new point set, reusing internal buffers. Repeated
  /// rebuilds at steady state (same-sized point sets) do not allocate.
  void rebuild(const std::vector<Vec2>& pts, double cell_size);

  /// Indices of all points within `radius` of q (inclusive).
  std::vector<int> query_radius(Vec2 q, double radius) const;

  /// As query_radius, but writes into a caller-owned buffer (cleared
  /// first) so steady-state queries do not allocate.
  void query_radius_into(Vec2 q, double radius, std::vector<int>& out) const;

  /// Calls visit(i) for every point index within `radius` of q
  /// (inclusive), in the same order query_radius returns them. The
  /// allocation-free primitive behind both query_radius overloads.
  template <class Visitor>
  void visit_radius(Vec2 q, double radius, Visitor&& visit) const {
    int cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
    cell_of(q - Vec2{radius, radius}, cx0, cy0);
    cell_of(q + Vec2{radius, radius}, cx1, cy1);
    if (cx0 < cx_lo_) cx0 = cx_lo_;
    if (cx1 > cx_hi_) cx1 = cx_hi_;
    if (cy0 < cy_lo_) cy0 = cy_lo_;
    if (cy1 > cy_hi_) cy1 = cy_hi_;
    const double r2 = radius * radius;
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (int cy = cy0; cy <= cy1; ++cy) {
        const std::size_t s =
            static_cast<std::size_t>(cx - cx_lo_) +
            static_cast<std::size_t>(cy - cy_lo_) * static_cast<std::size_t>(nx_);
        for (int k = cell_start_[s]; k < cell_start_[s + 1]; ++k) {
          int i = cell_pts_[static_cast<std::size_t>(k)];
          if (distance2(pts_[static_cast<std::size_t>(i)], q) <= r2 + 1e-12) {
            visit(i);
          }
        }
      }
    }
  }

  /// Index of the point nearest to q; -1 when the index is empty.
  int nearest(Vec2 q) const;

  /// Indices of the k points nearest to q (k clamped to size()), sorted by
  /// increasing distance.
  std::vector<int> k_nearest(Vec2 q, int k) const;

  const std::vector<Vec2>& points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  double cell_size() const { return cell_; }

 private:
  void build();
  void cell_of(Vec2 p, int& cx, int& cy) const;

  std::vector<Vec2> pts_;
  double cell_ = 1.0;

  // CSR buckets: points of dense cell slot s are
  // cell_pts_[cell_start_[s] .. cell_start_[s+1]), in increasing point id.
  std::vector<int> cell_start_;
  std::vector<int> cell_pts_;
  std::vector<int> cursor_;  // counting-sort scratch, kept for rebuild()

  // Cell-space bounding box of the data; empty index has hi < lo so every
  // clamped scan range is empty.
  int nx_ = 0, ny_ = 0;
  int cx_lo_ = 0, cx_hi_ = -1, cy_lo_ = 0, cy_hi_ = -1;
};

}  // namespace anr
