// Uniform spatial hash grid over points.
//
// Workhorse for neighbor queries: unit-disk graph construction
// (all pairs within r_c), nearest-grid-point snapping when a robot maps
// into a hole, and point location acceleration in the disk domain.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"

namespace anr {

/// Spatial index over a fixed point set. Cell size should be on the order
/// of the typical query radius.
class GridIndex {
 public:
  /// Builds the index over `pts` with the given cell size (> 0).
  GridIndex(std::vector<Vec2> pts, double cell_size);

  /// Indices of all points within `radius` of q (inclusive).
  std::vector<int> query_radius(Vec2 q, double radius) const;

  /// Index of the point nearest to q; -1 when the index is empty.
  int nearest(Vec2 q) const;

  /// Indices of the k points nearest to q (k clamped to size()), sorted by
  /// increasing distance.
  std::vector<int> k_nearest(Vec2 q, int k) const;

  const std::vector<Vec2>& points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }

 private:
  using CellKey = std::int64_t;
  CellKey key(int cx, int cy) const;
  void cell_of(Vec2 p, int& cx, int& cy) const;

  std::vector<Vec2> pts_;
  double cell_;
  std::unordered_map<CellKey, std::vector<int>> cells_;
  // Cell-space bounding box of the data (valid when pts_ nonempty).
  int cx_lo_ = 0, cx_hi_ = 0, cy_lo_ = 0, cy_hi_ = 0;
};

}  // namespace anr
