#include "geom/polygon_clip.h"

#include <cmath>

#include "common/check.h"

namespace anr {

HalfPlane bisector_half_plane(Vec2 site, Vec2 other) {
  ANR_CHECK_MSG(distance2(site, other) > 0.0, "bisector of coincident points");
  return HalfPlane{(site + other) * 0.5, (other - site).normalized()};
}

Polygon clip(const Polygon& poly, const HalfPlane& hp) {
  const auto& pts = poly.points();
  std::vector<Vec2> out;
  const std::size_t n = pts.size();
  if (n == 0) return Polygon{};
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 cur = pts[i];
    Vec2 nxt = pts[(i + 1) % n];
    bool cur_in = hp.keeps(cur);
    bool nxt_in = hp.keeps(nxt);
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      // Edge crosses the half-plane boundary; insert the crossing point.
      double dc = (cur - hp.point).dot(hp.normal);
      double dn = (nxt - hp.point).dot(hp.normal);
      double t = dc / (dc - dn);
      out.push_back(lerp(cur, nxt, t));
    }
  }
  return Polygon(std::move(out));
}

Polygon clip(const Polygon& poly, const std::vector<HalfPlane>& hps) {
  Polygon result = poly;
  for (const HalfPlane& hp : hps) {
    if (result.size() < 3) break;
    result = clip(result, hp);
  }
  return result;
}

}  // namespace anr
