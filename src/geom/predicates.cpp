#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anr {

namespace {
// Relative epsilon for the orientation test: scaled by the magnitude of the
// inputs so the predicate behaves the same at meter scale and at unit-disk
// scale.
constexpr double kOrientEps = 1e-12;
}  // namespace

double signed_area2(Vec2 a, Vec2 b, Vec2 c) {
  return (b - a).cross(c - a);
}

int orientation(Vec2 a, Vec2 b, Vec2 c) {
  double det = signed_area2(a, b, c);
  double scale = std::max({std::abs(a.x), std::abs(a.y), std::abs(b.x),
                           std::abs(b.y), std::abs(c.x), std::abs(c.y), 1.0});
  double eps = kOrientEps * scale * scale;
  if (det > eps) return 1;
  if (det < -eps) return -1;
  return 0;
}

bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  // Standard 3x3 determinant lifted onto the paraboloid, relative to d.
  Vec2 ad = a - d, bd = b - d, cd = c - d;
  double ad2 = ad.norm2(), bd2 = bd.norm2(), cd2 = cd.norm2();
  double det = ad.x * (bd.y * cd2 - cd.y * bd2) -
               ad.y * (bd.x * cd2 - cd.x * bd2) +
               ad2 * (bd.x * cd.y - cd.x * bd.y);
  // det > 0 iff d strictly inside circumcircle of CCW (a,b,c). Use a
  // magnitude-relative guard so near-cocircular reads as "outside".
  double scale = std::max({ad2, bd2, cd2, 1.0});
  return det > 1e-10 * scale * scale;
}

bool point_in_triangle(Vec2 p, Vec2 a, Vec2 b, Vec2 c) {
  int o1 = orientation(a, b, p);
  int o2 = orientation(b, c, p);
  int o3 = orientation(c, a, p);
  bool has_pos = o1 > 0 || o2 > 0 || o3 > 0;
  bool has_neg = o1 < 0 || o2 < 0 || o3 < 0;
  return !(has_pos && has_neg);
}

Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c) {
  Vec2 ab = b - a, ac = c - a;
  double d = 2.0 * ab.cross(ac);
  ANR_CHECK_MSG(std::abs(d) > 1e-30,
                "degenerate triangle has no circumcenter: (" +
                    std::to_string(a.x) + "," + std::to_string(a.y) + ") (" +
                    std::to_string(b.x) + "," + std::to_string(b.y) + ") (" +
                    std::to_string(c.x) + "," + std::to_string(c.y) + ")");
  double ab2 = ab.norm2(), ac2 = ac.norm2();
  double ux = (ac.y * ab2 - ab.y * ac2) / d;
  double uy = (ab.x * ac2 - ac.x * ab2) / d;
  return a + Vec2{ux, uy};
}

}  // namespace anr
