#include "geom/vec2.h"

#include <ostream>

namespace anr {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

}  // namespace anr
