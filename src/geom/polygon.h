// Simple polygons: area, centroid, containment, sampling, resampling.
//
// FoI boundaries and holes are simple polygons (possibly concave). All
// loops are stored counter-clockwise for outer boundaries; hole loops are
// also stored CCW and interpreted by the FoI layer.
#pragma once

#include <vector>

#include "geom/segment.h"
#include "geom/vec2.h"

namespace anr {

/// Axis-aligned bounding box.
struct BBox {
  Vec2 lo{1e300, 1e300};
  Vec2 hi{-1e300, -1e300};

  void expand(Vec2 p);
  void expand(const BBox& o);
  bool contains(Vec2 p) const;
  Vec2 center() const { return (lo + hi) * 0.5; }
  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y; }
};

/// Simple (non-self-intersecting) polygon given by its vertex loop.
/// Closing edge from back() to front() is implicit.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> pts) : pts_(std::move(pts)) {}

  const std::vector<Vec2>& points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }
  Vec2 operator[](std::size_t i) const { return pts_[i]; }

  /// Signed area; positive when counter-clockwise.
  double signed_area() const;
  double area() const;

  /// Area centroid (not vertex average). Requires non-zero area.
  Vec2 centroid() const;

  /// Total boundary length.
  double perimeter() const;

  BBox bbox() const;

  /// Even-odd (crossing-number) point containment. Boundary points count
  /// as inside within a small tolerance.
  bool contains(Vec2 p) const;

  /// Distance from p to the polygon boundary (0 on the boundary).
  double boundary_distance(Vec2 p) const;

  /// Point on the boundary closest to p.
  Vec2 closest_boundary_point(Vec2 p) const;

  /// Perimeter parameter (cumulative boundary length from vertex 0, in
  /// [0, perimeter())) of the boundary point closest to p.
  double perimeter_param(Vec2 p) const;

  /// Boundary point at perimeter parameter s (taken modulo perimeter()).
  Vec2 point_at_param(double s) const;

  /// True when the open segment (a,b) crosses the boundary (touching an
  /// endpoint vertex does not count as crossing).
  bool segment_crosses_boundary(Vec2 a, Vec2 b) const;

  /// All boundary edges as segments.
  std::vector<Segment> edges() const;

  /// Re-orients to counter-clockwise (no-op when already CCW).
  void make_ccw();

  /// Returns a copy whose vertices are spaced at most `max_spacing` apart
  /// (extra vertices inserted along long edges). Shape is unchanged.
  Polygon densified(double max_spacing) const;

  /// Uniformly scales about `about` by factor s.
  Polygon scaled(double s, Vec2 about) const;

  /// Translates by d.
  Polygon translated(Vec2 d) const;

  /// Rotates by `angle` radians about `about`.
  Polygon rotated(double angle, Vec2 about) const;

  /// Returns a copy scaled so that its area equals `target_area`
  /// (scaled about its centroid).
  Polygon with_area(double target_area) const;

 private:
  std::vector<Vec2> pts_;
};

/// Regular n-gon approximation of a circle.
Polygon make_circle(Vec2 center, double radius, int segments = 64);

/// Axis-aligned rectangle polygon (CCW).
Polygon make_rect(Vec2 lo, Vec2 hi);

}  // namespace anr
