// Geometric predicates: orientation, in-circle, point-in-triangle.
//
// These are epsilon-guarded double-precision predicates, not exact
// arithmetic. The library jitters degenerate inputs (e.g. cocircular
// lattice points before Delaunay) instead of carrying an exact-predicate
// dependency; tests exercise the degenerate cases we care about.
#pragma once

#include "geom/vec2.h"

namespace anr {

/// Sign of the signed area of triangle (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 (near-)collinear.
int orientation(Vec2 a, Vec2 b, Vec2 c);

/// Twice the signed area of triangle (a, b, c). Positive when CCW.
double signed_area2(Vec2 a, Vec2 b, Vec2 c);

/// True when point d lies strictly inside the circumcircle of CCW triangle
/// (a, b, c). Near-cocircular points count as outside (keeps Bowyer–Watson
/// terminating).
bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// True when p is inside or on the boundary of triangle (a, b, c),
/// any orientation.
bool point_in_triangle(Vec2 p, Vec2 a, Vec2 b, Vec2 c);

/// Circumcenter of triangle (a, b, c). Requires a non-degenerate triangle.
Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c);

}  // namespace anr
