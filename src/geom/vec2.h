// 2D vector / point type used throughout libanr.
//
// Robots live on a planar FoI (the paper's "general 2D surface" is treated
// planar in its own evaluation); all geometry is double precision.
#pragma once

#include <cmath>
#include <iosfwd>

namespace anr {

/// 2D point / vector with the usual arithmetic. Value type, trivially
/// copyable; coordinates are meters in world space or unitless in the
/// harmonic disk domain.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// 2D cross product (z component of the 3D cross).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  /// Unit vector; returns (0,0) for the zero vector.
  Vec2 normalized() const {
    double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Counter-clockwise rotation by `angle` radians about the origin.
  Vec2 rotated(double angle) const {
    double c = std::cos(angle), s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }

  /// Perpendicular (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }

  /// atan2 angle of the vector in (-pi, pi].
  double angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Linear interpolation: a at t=0, b at t=1.
inline constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return a * (1.0 - t) + b * t;
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace anr
