#include "geom/barycentric.h"

#include <cmath>

#include "common/check.h"
#include "geom/predicates.h"

namespace anr {

std::array<double, 3> barycentric(Vec2 p, Vec2 a, Vec2 b, Vec2 c) {
  double area = signed_area2(a, b, c);
  ANR_CHECK_MSG(std::abs(area) > 1e-30, "barycentric on degenerate triangle");
  double t1 = signed_area2(p, b, c) / area;
  double t2 = signed_area2(a, p, c) / area;
  double t3 = 1.0 - t1 - t2;
  return {t1, t2, t3};
}

Vec2 barycentric_interpolate(Vec2 p, Vec2 a, Vec2 b, Vec2 c, Vec2 va, Vec2 vb,
                             Vec2 vc) {
  auto t = barycentric(p, a, b, c);
  return va * t[0] + vb * t[1] + vc * t[2];
}

bool barycentric_inside(const std::array<double, 3>& t, double eps) {
  for (double v : t) {
    if (v < -eps || v > 1.0 + eps) return false;
  }
  return true;
}

}  // namespace anr
