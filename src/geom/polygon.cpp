#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/predicates.h"

namespace anr {

void BBox::expand(Vec2 p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

void BBox::expand(const BBox& o) {
  if (!o.valid()) return;
  expand(o.lo);
  expand(o.hi);
}

bool BBox::contains(Vec2 p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
}

double Polygon::signed_area() const {
  double a = 0.0;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    a += pts_[i].cross(pts_[(i + 1) % n]);
  }
  return 0.5 * a;
}

double Polygon::area() const { return std::abs(signed_area()); }

Vec2 Polygon::centroid() const {
  double a = 0.0;
  Vec2 c{};
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    Vec2 p = pts_[i], q = pts_[(i + 1) % n];
    double w = p.cross(q);
    a += w;
    c += (p + q) * w;
  }
  ANR_CHECK_MSG(std::abs(a) > 1e-30, "centroid of zero-area polygon");
  return c / (3.0 * a);
}

double Polygon::perimeter() const {
  double len = 0.0;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    len += distance(pts_[i], pts_[(i + 1) % n]);
  }
  return len;
}

BBox Polygon::bbox() const {
  BBox b;
  for (Vec2 p : pts_) b.expand(p);
  return b;
}

bool Polygon::contains(Vec2 p) const {
  if (pts_.size() < 3) return false;
  // Boundary tolerance: a point within 1e-9 of an edge is "inside"; the
  // crossing-number test alone is unstable exactly on the boundary.
  const std::size_t n = pts_.size();
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    Vec2 a = pts_[j], b = pts_[i];
    if (point_segment_distance(p, Segment{a, b}) < 1e-9) return true;
    bool straddles = (b.y > p.y) != (a.y > p.y);
    if (straddles) {
      double x_cross = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

double Polygon::boundary_distance(Vec2 p) const {
  double best = 1e300;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    best = std::min(best,
                    point_segment_distance(p, Segment{pts_[i], pts_[(i + 1) % n]}));
  }
  return best;
}

Vec2 Polygon::closest_boundary_point(Vec2 p) const {
  ANR_CHECK(!pts_.empty());
  double best = 1e300;
  Vec2 best_pt = pts_[0];
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    Vec2 cp = closest_point(Segment{pts_[i], pts_[(i + 1) % n]}, p);
    double d = distance(p, cp);
    if (d < best) {
      best = d;
      best_pt = cp;
    }
  }
  return best_pt;
}

double Polygon::perimeter_param(Vec2 p) const {
  ANR_CHECK(!pts_.empty());
  double best_d = 1e300, best_s = 0.0, s = 0.0;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    Segment e{pts_[i], pts_[(i + 1) % n]};
    double u = closest_point_param(e, p);
    double d = distance(p, lerp(e.a, e.b, u));
    if (d < best_d) {
      best_d = d;
      best_s = s + u * e.length();
    }
    s += e.length();
  }
  return best_s;
}

Vec2 Polygon::point_at_param(double s) const {
  ANR_CHECK(!pts_.empty());
  double total = perimeter();
  ANR_CHECK(total > 0.0);
  s = std::fmod(std::fmod(s, total) + total, total);
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    double len = distance(pts_[i], pts_[(i + 1) % n]);
    if (s <= len || i + 1 == n) {
      return lerp(pts_[i], pts_[(i + 1) % n], len > 0.0 ? s / len : 0.0);
    }
    s -= len;
  }
  return pts_[0];
}

bool Polygon::segment_crosses_boundary(Vec2 a, Vec2 b) const {
  Segment s{a, b};
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    Segment e{pts_[i], pts_[(i + 1) % n]};
    // Skip edges that merely touch the query segment's endpoints: a robot
    // standing exactly on the boundary is not "crossing" it.
    if (segments_intersect(s, e)) {
      auto x = segment_intersection(s, e);
      if (!x) return true;  // collinear overlap: treat as crossing
      if (distance(*x, a) > 1e-9 && distance(*x, b) > 1e-9) return true;
    }
  }
  return false;
}

std::vector<Segment> Polygon::edges() const {
  std::vector<Segment> out;
  out.reserve(pts_.size());
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    out.push_back({pts_[i], pts_[(i + 1) % n]});
  }
  return out;
}

void Polygon::make_ccw() {
  if (signed_area() < 0.0) std::reverse(pts_.begin(), pts_.end());
}

Polygon Polygon::densified(double max_spacing) const {
  ANR_CHECK(max_spacing > 0.0);
  std::vector<Vec2> out;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    Vec2 a = pts_[i], b = pts_[(i + 1) % n];
    double len = distance(a, b);
    int pieces = std::max(1, static_cast<int>(std::ceil(len / max_spacing)));
    for (int k = 0; k < pieces; ++k) {
      out.push_back(lerp(a, b, static_cast<double>(k) / pieces));
    }
  }
  return Polygon(std::move(out));
}

Polygon Polygon::scaled(double s, Vec2 about) const {
  std::vector<Vec2> out;
  out.reserve(pts_.size());
  for (Vec2 p : pts_) out.push_back(about + (p - about) * s);
  return Polygon(std::move(out));
}

Polygon Polygon::translated(Vec2 d) const {
  std::vector<Vec2> out;
  out.reserve(pts_.size());
  for (Vec2 p : pts_) out.push_back(p + d);
  return Polygon(std::move(out));
}

Polygon Polygon::rotated(double angle, Vec2 about) const {
  std::vector<Vec2> out;
  out.reserve(pts_.size());
  for (Vec2 p : pts_) out.push_back(about + (p - about).rotated(angle));
  return Polygon(std::move(out));
}

Polygon Polygon::with_area(double target_area) const {
  double a = area();
  ANR_CHECK_MSG(a > 0.0, "cannot rescale zero-area polygon");
  return scaled(std::sqrt(target_area / a), centroid());
}

Polygon make_circle(Vec2 center, double radius, int segments) {
  ANR_CHECK(segments >= 3);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(segments));
  for (int i = 0; i < segments; ++i) {
    double a = 2.0 * M_PI * i / segments;
    pts.push_back(center + Vec2{radius * std::cos(a), radius * std::sin(a)});
  }
  return Polygon(std::move(pts));
}

Polygon make_rect(Vec2 lo, Vec2 hi) {
  return Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

}  // namespace anr
