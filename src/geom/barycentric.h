// Barycentric coordinates (paper Appendix A).
//
// The modified harmonic map interpolates a robot's target geographic
// position from the three M2 grid points whose disk-domain triangle
// contains the robot's (rotated) disk position — Eqn. (1) of the paper.
#pragma once

#include <array>

#include "geom/vec2.h"

namespace anr {

/// Barycentric coordinates (t1, t2, t3) of p with respect to triangle
/// (a, b, c): p = t1*a + t2*b + t3*c, t1 + t2 + t3 = 1.
/// For p inside the triangle all three are in [0, 1].
/// Requires a non-degenerate triangle.
std::array<double, 3> barycentric(Vec2 p, Vec2 a, Vec2 b, Vec2 c);

/// Interpolates values at the triangle corners by the barycentric
/// coordinates of p: t1*va + t2*vb + t3*vc.
Vec2 barycentric_interpolate(Vec2 p, Vec2 a, Vec2 b, Vec2 c, Vec2 va, Vec2 vb,
                             Vec2 vc);

/// True when all coordinates are within [-eps, 1+eps].
bool barycentric_inside(const std::array<double, 3>& t, double eps = 1e-9);

}  // namespace anr
