#include "geom/grid_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace anr {

GridIndex::GridIndex(std::vector<Vec2> pts, double cell_size)
    : pts_(std::move(pts)), cell_(cell_size) {
  ANR_CHECK(cell_ > 0.0);
  bool first = true;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    int cx = 0, cy = 0;
    cell_of(pts_[i], cx, cy);
    cells_[key(cx, cy)].push_back(static_cast<int>(i));
    if (first) {
      cx_lo_ = cx_hi_ = cx;
      cy_lo_ = cy_hi_ = cy;
      first = false;
    } else {
      cx_lo_ = std::min(cx_lo_, cx);
      cx_hi_ = std::max(cx_hi_, cx);
      cy_lo_ = std::min(cy_lo_, cy);
      cy_hi_ = std::max(cy_hi_, cy);
    }
  }
}

GridIndex::CellKey GridIndex::key(int cx, int cy) const {
  return (static_cast<std::int64_t>(cx) << 32) ^
         (static_cast<std::int64_t>(cy) & 0xffffffffLL);
}

void GridIndex::cell_of(Vec2 p, int& cx, int& cy) const {
  cx = static_cast<int>(std::floor(p.x / cell_));
  cy = static_cast<int>(std::floor(p.y / cell_));
}

std::vector<int> GridIndex::query_radius(Vec2 q, double radius) const {
  std::vector<int> out;
  int cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
  cell_of(q - Vec2{radius, radius}, cx0, cy0);
  cell_of(q + Vec2{radius, radius}, cx1, cy1);
  double r2 = radius * radius;
  for (int cx = cx0; cx <= cx1; ++cx) {
    for (int cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find(key(cx, cy));
      if (it == cells_.end()) continue;
      for (int i : it->second) {
        if (distance2(pts_[static_cast<std::size_t>(i)], q) <= r2 + 1e-12) {
          out.push_back(i);
        }
      }
    }
  }
  return out;
}

int GridIndex::nearest(Vec2 q) const {
  if (pts_.empty()) return -1;

  auto brute_force = [&] {
    int best = 0;
    for (std::size_t i = 1; i < pts_.size(); ++i) {
      if (distance2(pts_[i], q) < distance2(pts_[static_cast<std::size_t>(best)], q)) {
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  int cx = 0, cy = 0;
  cell_of(q, cx, cy);
  // Queries far outside the data extent would walk huge empty rings; fall
  // back to a linear scan there (such queries are rare and cheap enough).
  int margin = 4;
  if (cx < cx_lo_ - margin || cx > cx_hi_ + margin || cy < cy_lo_ - margin ||
      cy > cy_hi_ + margin) {
    return brute_force();
  }

  int best = -1;
  double best_d2 = 1e300;
  auto scan_cell = [&](int x, int y) {
    auto it = cells_.find(key(x, y));
    if (it == cells_.end()) return;
    for (int i : it->second) {
      double d2 = distance2(pts_[static_cast<std::size_t>(i)], q);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
  };

  int max_ring = std::max(cx_hi_ - cx_lo_, cy_hi_ - cy_lo_) + margin + 1;
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (ring == 0) {
      scan_cell(cx, cy);
    } else {
      for (int dx = -ring; dx <= ring; ++dx) {  // top and bottom rows
        scan_cell(cx + dx, cy - ring);
        scan_cell(cx + dx, cy + ring);
      }
      for (int dy = -ring + 1; dy <= ring - 1; ++dy) {  // side columns
        scan_cell(cx - ring, cy + dy);
        scan_cell(cx + ring, cy + dy);
      }
    }
    // Once a candidate exists, stop when the next ring cannot be closer:
    // every cell of ring r is at least (r-1)*cell_ away from q.
    if (best >= 0 && best_d2 <= static_cast<double>(ring) * cell_ *
                                    static_cast<double>(ring) * cell_) {
      break;
    }
  }
  return best >= 0 ? best : brute_force();
}

std::vector<int> GridIndex::k_nearest(Vec2 q, int k) const {
  k = std::min<int>(k, static_cast<int>(pts_.size()));
  if (k <= 0) return {};
  // Simple approach: expand a radius until we have >= k hits, then sort.
  double r = cell_;
  std::vector<int> hits;
  while (static_cast<int>(hits.size()) < k) {
    hits = query_radius(q, r);
    r *= 2.0;
    ANR_CHECK_MSG(r < 1e12, "k_nearest(): runaway radius expansion");
  }
  std::sort(hits.begin(), hits.end(), [&](int a, int b) {
    return distance2(pts_[static_cast<std::size_t>(a)], q) <
           distance2(pts_[static_cast<std::size_t>(b)], q);
  });
  hits.resize(static_cast<std::size_t>(k));
  return hits;
}

}  // namespace anr
