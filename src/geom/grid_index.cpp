#include "geom/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anr {

GridIndex::GridIndex(std::vector<Vec2> pts, double cell_size)
    : pts_(std::move(pts)), cell_(cell_size) {
  build();
}

void GridIndex::rebuild(const std::vector<Vec2>& pts, double cell_size) {
  pts_.assign(pts.begin(), pts.end());
  cell_ = cell_size;
  build();
}

void GridIndex::build() {
  ANR_CHECK(cell_ > 0.0);
  nx_ = ny_ = 0;
  cx_lo_ = cy_lo_ = 0;
  cx_hi_ = cy_hi_ = -1;
  cell_start_.clear();
  cell_pts_.clear();
  if (pts_.empty()) return;

  double min_x = pts_[0].x, max_x = pts_[0].x;
  double min_y = pts_[0].y, max_y = pts_[0].y;
  for (const Vec2& p : pts_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }

  // Dense cell range over the bbox. A pathologically small cell for a
  // widely spread point set would make it huge; coarsen until the slot
  // array stays linear in the point count (query results are independent
  // of the cell size — it is only an acceleration parameter).
  const std::int64_t cap =
      std::max<std::int64_t>(1024, 16 * static_cast<std::int64_t>(pts_.size()));
  for (;;) {
    cx_lo_ = static_cast<int>(std::floor(min_x / cell_));
    cx_hi_ = static_cast<int>(std::floor(max_x / cell_));
    cy_lo_ = static_cast<int>(std::floor(min_y / cell_));
    cy_hi_ = static_cast<int>(std::floor(max_y / cell_));
    std::int64_t span = (static_cast<std::int64_t>(cx_hi_) - cx_lo_ + 1) *
                        (static_cast<std::int64_t>(cy_hi_) - cy_lo_ + 1);
    if (span <= cap) break;
    cell_ *= 2.0;
  }
  nx_ = cx_hi_ - cx_lo_ + 1;
  ny_ = cy_hi_ - cy_lo_ + 1;

  // Counting sort of point ids into cells (stable: ids stay increasing
  // within each cell).
  const std::size_t num_cells =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  cell_start_.assign(num_cells + 1, 0);
  auto slot_of = [&](Vec2 p) {
    int cx = 0, cy = 0;
    cell_of(p, cx, cy);
    return static_cast<std::size_t>(cx - cx_lo_) +
           static_cast<std::size_t>(cy - cy_lo_) * static_cast<std::size_t>(nx_);
  };
  for (const Vec2& p : pts_) ++cell_start_[slot_of(p) + 1];
  for (std::size_t s = 0; s < num_cells; ++s) {
    cell_start_[s + 1] += cell_start_[s];
  }
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  cell_pts_.resize(pts_.size());
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    cell_pts_[static_cast<std::size_t>(cursor_[slot_of(pts_[i])]++)] =
        static_cast<int>(i);
  }
}

void GridIndex::cell_of(Vec2 p, int& cx, int& cy) const {
  cx = static_cast<int>(std::floor(p.x / cell_));
  cy = static_cast<int>(std::floor(p.y / cell_));
}

void GridIndex::query_radius_into(Vec2 q, double radius,
                                  std::vector<int>& out) const {
  out.clear();
  visit_radius(q, radius, [&](int i) { out.push_back(i); });
}

std::vector<int> GridIndex::query_radius(Vec2 q, double radius) const {
  std::vector<int> out;
  query_radius_into(q, radius, out);
  return out;
}

int GridIndex::nearest(Vec2 q) const {
  if (pts_.empty()) return -1;

  auto brute_force = [&] {
    int best = 0;
    for (std::size_t i = 1; i < pts_.size(); ++i) {
      if (distance2(pts_[i], q) < distance2(pts_[static_cast<std::size_t>(best)], q)) {
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  int cx = 0, cy = 0;
  cell_of(q, cx, cy);
  // Queries far outside the data extent would walk huge empty rings; fall
  // back to a linear scan there (such queries are rare and cheap enough).
  int margin = 4;
  if (cx < cx_lo_ - margin || cx > cx_hi_ + margin || cy < cy_lo_ - margin ||
      cy > cy_hi_ + margin) {
    return brute_force();
  }

  int best = -1;
  double best_d2 = 1e300;
  auto scan_cell = [&](int x, int y) {
    if (x < cx_lo_ || x > cx_hi_ || y < cy_lo_ || y > cy_hi_) return;
    const std::size_t s =
        static_cast<std::size_t>(x - cx_lo_) +
        static_cast<std::size_t>(y - cy_lo_) * static_cast<std::size_t>(nx_);
    for (int k = cell_start_[s]; k < cell_start_[s + 1]; ++k) {
      int i = cell_pts_[static_cast<std::size_t>(k)];
      double d2 = distance2(pts_[static_cast<std::size_t>(i)], q);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
  };

  int max_ring = std::max(cx_hi_ - cx_lo_, cy_hi_ - cy_lo_) + margin + 1;
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (ring == 0) {
      scan_cell(cx, cy);
    } else {
      for (int dx = -ring; dx <= ring; ++dx) {  // top and bottom rows
        scan_cell(cx + dx, cy - ring);
        scan_cell(cx + dx, cy + ring);
      }
      for (int dy = -ring + 1; dy <= ring - 1; ++dy) {  // side columns
        scan_cell(cx - ring, cy + dy);
        scan_cell(cx + ring, cy + dy);
      }
    }
    // Once a candidate exists, stop when the next ring cannot be closer:
    // every cell of ring r is at least (r-1)*cell_ away from q.
    if (best >= 0 && best_d2 <= static_cast<double>(ring) * cell_ *
                                    static_cast<double>(ring) * cell_) {
      break;
    }
  }
  return best >= 0 ? best : brute_force();
}

std::vector<int> GridIndex::k_nearest(Vec2 q, int k) const {
  k = std::min<int>(k, static_cast<int>(pts_.size()));
  if (k <= 0) return {};
  // Simple approach: expand a radius until we have >= k hits, then sort.
  double r = cell_;
  std::vector<int> hits;
  while (static_cast<int>(hits.size()) < k) {
    query_radius_into(q, r, hits);
    r *= 2.0;
    ANR_CHECK_MSG(r < 1e12, "k_nearest(): runaway radius expansion");
  }
  std::sort(hits.begin(), hits.end(), [&](int a, int b) {
    return distance2(pts_[static_cast<std::size_t>(a)], q) <
           distance2(pts_[static_cast<std::size_t>(b)], q);
  });
  hits.resize(static_cast<std::size_t>(k));
  return hits;
}

}  // namespace anr
