// Half-plane clipping of polygons (Sutherland–Hodgman style).
//
// The exact Voronoi-cell construction clips the FoI outer polygon by the
// perpendicular-bisector half-planes of neighboring sites. Clipping a
// concave subject polygon against a single half-plane can in principle
// produce multiple components joined by degenerate edges; for area and
// centroid computation (all we need) the Sutherland–Hodgman output is
// still correct.
#pragma once

#include "geom/polygon.h"

namespace anr {

/// Oriented half-plane: the set of points p with (p - point).dot(normal) <= 0,
/// i.e. `normal` points *out* of the kept region.
struct HalfPlane {
  Vec2 point;
  Vec2 normal;

  bool keeps(Vec2 p) const { return (p - point).dot(normal) <= 1e-12; }
};

/// Perpendicular-bisector half-plane keeping points closer to `site` than
/// to `other`.
HalfPlane bisector_half_plane(Vec2 site, Vec2 other);

/// Clips `poly` against `hp`, returning the kept part (possibly empty).
Polygon clip(const Polygon& poly, const HalfPlane& hp);

/// Clips `poly` against every half-plane in turn.
Polygon clip(const Polygon& poly, const std::vector<HalfPlane>& hps);

}  // namespace anr
