#include "geom/convex_hull.h"

#include <algorithm>

namespace anr {

Polygon convex_hull(std::vector<Vec2> pts) {
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return Polygon(std::move(pts));

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  auto turns_right = [](Vec2 o, Vec2 a, Vec2 b) {
    return (a - o).cross(b - o) <= 1e-12;
  };
  for (std::size_t i = 0; i < n; ++i) {  // lower chain
    while (k >= 2 && turns_right(hull[k - 2], hull[k - 1], pts[i])) --k;
    hull[k++] = pts[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper chain
    while (k >= t && turns_right(hull[k - 2], hull[k - 1], pts[i])) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return Polygon(std::move(hull));
}

}  // namespace anr
