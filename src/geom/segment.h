// Line segments: intersection tests, closest points, projections.
//
// Used by trajectory planning (does a straight-line robot path cross a hole
// boundary?) and by the Voronoi half-plane clipper.
#pragma once

#include <optional>

#include "geom/vec2.h"

namespace anr {

/// Closed segment from a to b.
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
  Vec2 midpoint() const { return (a + b) * 0.5; }
  Vec2 direction() const { return (b - a).normalized(); }
};

/// True when segments s and t intersect (including touching endpoints and
/// collinear overlap).
bool segments_intersect(const Segment& s, const Segment& t);

/// Proper intersection point of s and t when they cross at a single point;
/// nullopt for disjoint, touching-only-at-shared-endpoint tolerance is
/// *included* (an endpoint touch returns that point), collinear overlaps
/// return nullopt (no unique point).
std::optional<Vec2> segment_intersection(const Segment& s, const Segment& t);

/// Parameter t in [0,1] of the point on segment s closest to p.
double closest_point_param(const Segment& s, Vec2 p);

/// Point on segment s closest to p.
Vec2 closest_point(const Segment& s, Vec2 p);

/// Distance from p to segment s.
double point_segment_distance(Vec2 p, const Segment& s);

}  // namespace anr
