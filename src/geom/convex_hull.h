// Convex hull (Andrew's monotone chain).
//
// Used by mesh-quality checks (hull area vs. mesh area), by the
// direct-translation baseline for sanity reporting, and by tests as an
// oracle for boundary extraction on convex point sets.
#pragma once

#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"

namespace anr {

/// Convex hull of `pts` as a CCW polygon. Collinear points on hull edges
/// are dropped. Fewer than 3 distinct points yields the points as-is.
Polygon convex_hull(std::vector<Vec2> pts);

}  // namespace anr
