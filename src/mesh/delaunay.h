// Delaunay triangulation (Bowyer–Watson).
//
// Serves two roles: (1) geometric reference for extracting the robot
// triangulation T in M1 (keep Delaunay edges no longer than r_c — the
// result matches what the distributed Zhou-et-al-style extraction
// converges to, and the two are cross-checked in tests), and (2) the
// triangulator behind the FoI mesher (grid + boundary points).
#pragma once

#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr {

/// Delaunay triangulation of `pts`. The returned mesh has exactly the
/// input vertices (same order) and CCW triangles covering the convex hull.
///
/// Near-degenerate inputs (exactly cocircular lattice points) are handled
/// by the epsilon guard in the in-circumcircle predicate: ambiguous flips
/// are skipped, so the result may be only *near*-Delaunay there — possibly
/// including zero-area boundary slivers and, above the spatial-sort
/// threshold, insertion-order sliver artifacts of measure ~one lattice
/// cell. The mesh is always an edge-manifold triangulated disk with no
/// inverted triangles, which is what every consumer in this library relies
/// on. Requires >= 3 non-collinear points.
///
/// Construction is incremental Bowyer–Watson with hinted point location:
/// each insertion walks the triangulation from a hint-grid seed instead of
/// scanning all triangles, and inputs above a size threshold are inserted
/// in a serpentine spatial order, making construction near-O(n log n).
TriangleMesh delaunay(const std::vector<Vec2>& pts);

}  // namespace anr
