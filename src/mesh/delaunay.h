// Delaunay triangulation (Bowyer–Watson).
//
// Serves two roles: (1) geometric reference for extracting the robot
// triangulation T in M1 (keep Delaunay edges no longer than r_c — the
// result matches what the distributed Zhou-et-al-style extraction
// converges to, and the two are cross-checked in tests), and (2) the
// triangulator behind the FoI mesher (grid + boundary points).
#pragma once

#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr {

/// Delaunay triangulation of `pts`. The returned mesh has exactly the
/// input vertices (same order) and CCW triangles covering the convex hull.
///
/// Near-degenerate inputs (exactly cocircular lattice points) are handled
/// by the epsilon guard in the in-circumcircle predicate: ambiguous flips
/// are skipped, so the result may be only *near*-Delaunay there, which is
/// fine for every consumer in this library. Requires >= 3 non-collinear
/// points.
TriangleMesh delaunay(const std::vector<Vec2>& pts);

}  // namespace anr
