#include "mesh/alpha_extract.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "mesh/delaunay.h"

namespace anr {

namespace {

// Partitions triangles into edge-connected components; returns component id
// per triangle and the size of each component.
std::pair<std::vector<int>, std::vector<int>> triangle_components(
    const std::vector<Tri>& tris) {
  std::map<EdgeKey, std::vector<int>> edge_to_tris;
  for (std::size_t ti = 0; ti < tris.size(); ++ti) {
    const Tri& t = tris[ti];
    for (int k = 0; k < 3; ++k) {
      edge_to_tris[EdgeKey(t[static_cast<std::size_t>(k)],
                           t[static_cast<std::size_t>((k + 1) % 3)])]
          .push_back(static_cast<int>(ti));
    }
  }
  std::vector<int> comp(tris.size(), -1);
  std::vector<int> sizes;
  for (std::size_t seed = 0; seed < tris.size(); ++seed) {
    if (comp[seed] >= 0) continue;
    int id = static_cast<int>(sizes.size());
    sizes.push_back(0);
    std::vector<int> stack{static_cast<int>(seed)};
    comp[seed] = id;
    while (!stack.empty()) {
      int ti = stack.back();
      stack.pop_back();
      ++sizes[static_cast<std::size_t>(id)];
      const Tri& t = tris[static_cast<std::size_t>(ti)];
      for (int k = 0; k < 3; ++k) {
        const auto& adj =
            edge_to_tris[EdgeKey(t[static_cast<std::size_t>(k)],
                                 t[static_cast<std::size_t>((k + 1) % 3)])];
        for (int tj : adj) {
          if (comp[static_cast<std::size_t>(tj)] < 0) {
            comp[static_cast<std::size_t>(tj)] = id;
            stack.push_back(tj);
          }
        }
      }
    }
  }
  return {std::move(comp), std::move(sizes)};
}

// Splits the triangles incident to vertex v into fan components connected
// through edges incident to v. Returns the triangle-index groups.
std::vector<std::vector<int>> vertex_fans(const TriangleMesh& mesh, VertexId v) {
  const auto& inc = mesh.vertex_triangles(v);
  std::vector<std::vector<int>> fans;
  std::set<int> left(inc.begin(), inc.end());
  const auto& tris = mesh.triangles();
  while (!left.empty()) {
    int seed = *left.begin();
    left.erase(left.begin());
    std::vector<int> fan{seed};
    std::vector<int> stack{seed};
    while (!stack.empty()) {
      int ti = stack.back();
      stack.pop_back();
      const Tri& t = tris[static_cast<std::size_t>(ti)];
      for (auto it = left.begin(); it != left.end();) {
        const Tri& s = tris[static_cast<std::size_t>(*it)];
        int common = 0;
        for (VertexId a : t) {
          for (VertexId b : s) {
            if (a == b) ++common;
          }
        }
        if (common >= 2) {  // shares the edge through v (v plus one more)
          fan.push_back(*it);
          stack.push_back(*it);
          it = left.erase(it);
        } else {
          ++it;
        }
      }
    }
    fans.push_back(std::move(fan));
  }
  return fans;
}

}  // namespace

AlphaExtraction clean_to_manifold(TriangleMesh mesh) {
  // Iterate: keep largest edge-connected component, then break bowties by
  // dropping all but the largest fan at each non-manifold vertex. Each pass
  // strictly removes triangles, so this terminates.
  for (int pass = 0; pass < 64; ++pass) {
    std::vector<Tri> tris = mesh.triangles();
    if (tris.empty()) break;

    auto [comp, sizes] = triangle_components(tris);
    int largest = static_cast<int>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
    std::vector<Tri> kept;
    kept.reserve(tris.size());
    for (std::size_t ti = 0; ti < tris.size(); ++ti) {
      if (comp[ti] == largest) kept.push_back(tris[ti]);
    }
    bool dropped_component = kept.size() != tris.size();
    mesh.set_triangles(std::move(kept));

    // Find bowtie vertices and drop their minority fans.
    std::set<int> to_drop;
    for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
      if (mesh.vertex_triangles(static_cast<VertexId>(v)).empty()) continue;
      auto fans = vertex_fans(mesh, static_cast<VertexId>(v));
      if (fans.size() <= 1) continue;
      std::size_t largest_fan = 0;
      for (std::size_t f = 1; f < fans.size(); ++f) {
        if (fans[f].size() > fans[largest_fan].size()) largest_fan = f;
      }
      for (std::size_t f = 0; f < fans.size(); ++f) {
        if (f == largest_fan) continue;
        to_drop.insert(fans[f].begin(), fans[f].end());
      }
    }
    if (to_drop.empty() && !dropped_component) break;  // already clean
    if (!to_drop.empty()) {
      std::vector<Tri> pruned;
      const auto& cur = mesh.triangles();
      pruned.reserve(cur.size() - to_drop.size());
      for (std::size_t ti = 0; ti < cur.size(); ++ti) {
        if (!to_drop.count(static_cast<int>(ti))) pruned.push_back(cur[ti]);
      }
      mesh.set_triangles(std::move(pruned));
    } else if (!dropped_component) {
      break;
    }
  }
  ANR_CHECK_MSG(mesh.vertex_manifold(), "cleanup failed to reach manifold");
  mesh.make_ccw();

  AlphaExtraction out;
  out.mesh = std::move(mesh);
  for (std::size_t v = 0; v < out.mesh.num_vertices(); ++v) {
    if (out.mesh.vertex_triangles(static_cast<VertexId>(v)).empty()) {
      out.unmeshed.push_back(static_cast<VertexId>(v));
    }
  }
  return out;
}

AlphaExtraction alpha_extract(const std::vector<Vec2>& pts, double alpha) {
  ANR_CHECK(alpha > 0.0);
  TriangleMesh dt = delaunay(pts);
  std::vector<Tri> kept;
  double a2 = alpha * alpha;
  for (const Tri& t : dt.triangles()) {
    Vec2 a = pts[static_cast<std::size_t>(t[0])];
    Vec2 b = pts[static_cast<std::size_t>(t[1])];
    Vec2 c = pts[static_cast<std::size_t>(t[2])];
    if (distance2(a, b) <= a2 && distance2(b, c) <= a2 && distance2(c, a) <= a2) {
      kept.push_back(t);
    }
  }
  return clean_to_manifold(TriangleMesh(pts, std::move(kept)));
}

}  // namespace anr
