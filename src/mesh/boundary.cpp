#include "mesh/boundary.h"

#include <map>

#include "common/check.h"
#include "geom/polygon.h"

namespace anr {

double BoundaryLoop::length(const TriangleMesh& mesh) const {
  double len = 0.0;
  for (std::size_t i = 0, n = vertices.size(); i < n; ++i) {
    len += distance(mesh.position(vertices[i]),
                    mesh.position(vertices[(i + 1) % n]));
  }
  return len;
}

std::vector<BoundaryLoop> boundary_loops(const TriangleMesh& mesh) {
  auto bedges = mesh.boundary_edges();
  // Adjacency restricted to boundary edges. On a vertex-manifold mesh every
  // boundary vertex has exactly two incident boundary edges, so the chains
  // close into simple cycles.
  std::map<VertexId, std::vector<VertexId>> adj;
  for (const EdgeKey& e : bedges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  for (const auto& [v, nb] : adj) {
    ANR_CHECK_MSG(nb.size() == 2,
                  "boundary vertex without exactly two boundary edges "
                  "(non-manifold mesh?)");
  }

  std::vector<BoundaryLoop> loops;
  std::map<VertexId, bool> visited;
  for (const auto& [start, nb] : adj) {
    if (visited[start]) continue;
    BoundaryLoop loop;
    VertexId prev = -1;
    VertexId cur = start;
    do {
      loop.vertices.push_back(cur);
      visited[cur] = true;
      const auto& candidates = adj[cur];
      VertexId next = (candidates[0] == prev) ? candidates[1] : candidates[0];
      prev = cur;
      cur = next;
    } while (cur != start);
    ANR_CHECK(loop.vertices.size() >= 3);
    loops.push_back(std::move(loop));
  }
  return loops;
}

std::size_t outer_loop_index(const TriangleMesh& mesh,
                             const std::vector<BoundaryLoop>& loops) {
  ANR_CHECK(!loops.empty());
  std::size_t best = 0;
  double best_area = -1.0;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    BBox bb;
    for (VertexId v : loops[i].vertices) bb.expand(mesh.position(v));
    double area = bb.width() * bb.height();
    if (area > best_area) {
      best_area = area;
      best = i;
    }
  }
  return best;
}

}  // namespace anr
