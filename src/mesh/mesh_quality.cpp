#include "mesh/mesh_quality.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "geom/predicates.h"
#include "mesh/boundary.h"

namespace anr {

MeshStats mesh_stats(const TriangleMesh& mesh) {
  MeshStats s;
  s.vertices = mesh.num_vertices();
  s.triangles = mesh.num_triangles();
  auto edges = mesh.edges();
  s.edges = edges.size();
  s.boundary_edges = mesh.boundary_edges().size();
  s.euler = mesh.euler_characteristic();
  if (mesh.vertex_manifold() && s.boundary_edges > 0) {
    s.boundary_loops = boundary_loops(mesh).size();
  }

  s.min_angle_deg = 180.0;
  s.max_angle_deg = 0.0;
  s.min_edge = 1e300;
  s.max_edge = 0.0;
  double edge_sum = 0.0;
  for (const EdgeKey& e : edges) {
    double len = distance(mesh.position(e.a), mesh.position(e.b));
    s.min_edge = std::min(s.min_edge, len);
    s.max_edge = std::max(s.max_edge, len);
    edge_sum += len;
  }
  s.mean_edge = edges.empty() ? 0.0 : edge_sum / static_cast<double>(edges.size());

  for (const Tri& t : mesh.triangles()) {
    Vec2 p[3] = {mesh.position(t[0]), mesh.position(t[1]), mesh.position(t[2])};
    s.total_area += 0.5 * std::abs(signed_area2(p[0], p[1], p[2]));
    for (int k = 0; k < 3; ++k) {
      Vec2 u = (p[(k + 1) % 3] - p[k]).normalized();
      Vec2 v = (p[(k + 2) % 3] - p[k]).normalized();
      double ang = std::acos(std::clamp(u.dot(v), -1.0, 1.0)) * 180.0 / M_PI;
      s.min_angle_deg = std::min(s.min_angle_deg, ang);
      s.max_angle_deg = std::max(s.max_angle_deg, ang);
    }
  }
  if (mesh.num_triangles() == 0) {
    s.min_angle_deg = 0.0;
    s.min_edge = 0.0;
  }
  return s;
}

std::string MeshStats::summary() const {
  std::ostringstream os;
  os << "V=" << vertices << " F=" << triangles << " E=" << edges
     << " boundary(E=" << boundary_edges << ", loops=" << boundary_loops
     << ") chi=" << euler << " angles=[" << min_angle_deg << ", "
     << max_angle_deg << "]deg edge=[" << min_edge << ", " << max_edge
     << "] area=" << total_area;
  return os.str();
}

}  // namespace anr
