#include "mesh/hole_fill.h"

#include "common/check.h"
#include "geom/predicates.h"

namespace anr {

HoleFillResult fill_holes(const TriangleMesh& mesh) {
  HoleFillResult out;
  out.mesh = mesh;
  out.triangle_is_virtual.assign(mesh.num_triangles(), 0);

  auto loops = boundary_loops(mesh);
  ANR_CHECK_MSG(!loops.empty(), "mesh has no boundary");
  std::size_t outer = outer_loop_index(mesh, loops);

  for (std::size_t li = 0; li < loops.size(); ++li) {
    if (li == outer) continue;
    const auto& loop = loops[li].vertices;
    Vec2 center{};
    for (VertexId v : loop) center += mesh.position(v);
    center = center / static_cast<double>(loop.size());
    VertexId vv = out.mesh.add_vertex(center);
    out.virtual_vertices.push_back(vv);
    for (std::size_t i = 0, n = loop.size(); i < n; ++i) {
      Tri t{loop[i], loop[(i + 1) % n], vv};
      // Orient the fan triangle CCW.
      if (signed_area2(out.mesh.position(t[0]), out.mesh.position(t[1]),
                       out.mesh.position(t[2])) < 0.0) {
        std::swap(t[0], t[1]);
      }
      out.mesh.add_triangle(t);
      out.triangle_is_virtual.push_back(1);
    }
    ++out.holes_filled;
  }
  return out;
}

}  // namespace anr
