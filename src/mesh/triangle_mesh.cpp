#include "mesh/triangle_mesh.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "geom/predicates.h"

namespace anr {

TriangleMesh::TriangleMesh(std::vector<Vec2> vertices, std::vector<Tri> triangles)
    : verts_(std::move(vertices)), tris_(std::move(triangles)) {
  for (const Tri& t : tris_) {
    for (VertexId v : t) {
      ANR_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < verts_.size(),
                    "triangle references missing vertex");
    }
  }
}

TriangleMesh::TriangleMesh(const TriangleMesh& other) {
  std::lock_guard<std::mutex> lock(other.adjacency_mutex_);
  verts_ = other.verts_;
  tris_ = other.tris_;
  if (other.adjacency_valid_.load(std::memory_order_acquire)) {
    nbr_ = other.nbr_;
    vert_tris_ = other.vert_tris_;
    edge_tris_ = other.edge_tris_;
    adjacency_valid_.store(true, std::memory_order_release);
  }
}

TriangleMesh& TriangleMesh::operator=(const TriangleMesh& other) {
  if (this == &other) return *this;
  TriangleMesh copy(other);
  *this = std::move(copy);
  return *this;
}

TriangleMesh::TriangleMesh(TriangleMesh&& other) noexcept
    : verts_(std::move(other.verts_)), tris_(std::move(other.tris_)) {
  // Moving from a mesh concurrently queried elsewhere is a caller bug
  // (same contract as std containers); no lock needed.
  if (other.adjacency_valid_.load(std::memory_order_acquire)) {
    nbr_ = std::move(other.nbr_);
    vert_tris_ = std::move(other.vert_tris_);
    edge_tris_ = std::move(other.edge_tris_);
    adjacency_valid_.store(true, std::memory_order_release);
  }
  other.adjacency_valid_.store(false, std::memory_order_release);
}

TriangleMesh& TriangleMesh::operator=(TriangleMesh&& other) noexcept {
  if (this == &other) return *this;
  verts_ = std::move(other.verts_);
  tris_ = std::move(other.tris_);
  if (other.adjacency_valid_.load(std::memory_order_acquire)) {
    nbr_ = std::move(other.nbr_);
    vert_tris_ = std::move(other.vert_tris_);
    edge_tris_ = std::move(other.edge_tris_);
    adjacency_valid_.store(true, std::memory_order_release);
  } else {
    adjacency_valid_.store(false, std::memory_order_release);
  }
  other.adjacency_valid_.store(false, std::memory_order_release);
  return *this;
}

VertexId TriangleMesh::add_vertex(Vec2 p) {
  invalidate();
  verts_.push_back(p);
  return static_cast<VertexId>(verts_.size() - 1);
}

void TriangleMesh::add_triangle(Tri t) {
  for (VertexId v : t) {
    ANR_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < verts_.size(),
                  "triangle references missing vertex");
  }
  invalidate();
  tris_.push_back(t);
}

void TriangleMesh::set_triangles(std::vector<Tri> tris) {
  invalidate();
  tris_ = std::move(tris);
}

void TriangleMesh::build_adjacency() const {
  if (adjacency_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(adjacency_mutex_);
  if (adjacency_valid_.load(std::memory_order_relaxed)) return;
  nbr_.assign(verts_.size(), {});
  vert_tris_.assign(verts_.size(), {});
  edge_tris_.clear();
  for (std::size_t ti = 0; ti < tris_.size(); ++ti) {
    const Tri& t = tris_[ti];
    for (int k = 0; k < 3; ++k) {
      VertexId u = t[static_cast<std::size_t>(k)];
      VertexId v = t[static_cast<std::size_t>((k + 1) % 3)];
      ++edge_tris_[EdgeKey(u, v)];
      vert_tris_[static_cast<std::size_t>(u)].push_back(static_cast<int>(ti));
    }
  }
  for (const auto& [e, cnt] : edge_tris_) {
    nbr_[static_cast<std::size_t>(e.a)].push_back(e.b);
    nbr_[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  for (auto& list : nbr_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  adjacency_valid_.store(true, std::memory_order_release);
}

const std::vector<VertexId>& TriangleMesh::neighbors(VertexId v) const {
  build_adjacency();
  return nbr_[static_cast<std::size_t>(v)];
}

std::vector<EdgeKey> TriangleMesh::edges() const {
  build_adjacency();
  std::vector<EdgeKey> out;
  out.reserve(edge_tris_.size());
  for (const auto& [e, cnt] : edge_tris_) out.push_back(e);
  return out;
}

int TriangleMesh::edge_triangle_count(VertexId u, VertexId v) const {
  build_adjacency();
  auto it = edge_tris_.find(EdgeKey(u, v));
  return it == edge_tris_.end() ? 0 : it->second;
}

std::vector<EdgeKey> TriangleMesh::boundary_edges() const {
  build_adjacency();
  std::vector<EdgeKey> out;
  for (const auto& [e, cnt] : edge_tris_) {
    if (cnt == 1) out.push_back(e);
  }
  return out;
}

bool TriangleMesh::is_boundary_vertex(VertexId v) const {
  build_adjacency();
  for (VertexId u : nbr_[static_cast<std::size_t>(v)]) {
    auto it = edge_tris_.find(EdgeKey(v, u));
    if (it != edge_tris_.end() && it->second == 1) return true;
  }
  return false;
}

const std::vector<int>& TriangleMesh::vertex_triangles(VertexId v) const {
  build_adjacency();
  return vert_tris_[static_cast<std::size_t>(v)];
}

bool TriangleMesh::edge_manifold() const {
  build_adjacency();
  for (const auto& [e, cnt] : edge_tris_) {
    if (cnt > 2) return false;
  }
  return true;
}

bool TriangleMesh::vertex_manifold() const {
  build_adjacency();
  if (!edge_manifold()) return false;
  // A vertex is manifold when its incident triangles form one connected
  // component under shared-edge adjacency.
  for (std::size_t v = 0; v < verts_.size(); ++v) {
    const auto& inc = vert_tris_[v];
    if (inc.empty()) continue;
    std::set<int> seen;
    std::vector<int> stack{inc[0]};
    seen.insert(inc[0]);
    while (!stack.empty()) {
      int ti = stack.back();
      stack.pop_back();
      const Tri& t = tris_[static_cast<std::size_t>(ti)];
      for (int tj : inc) {
        if (seen.count(tj)) continue;
        const Tri& s = tris_[static_cast<std::size_t>(tj)];
        // Shared edge through v: both triangles contain v and another
        // common vertex.
        int common = 0;
        for (VertexId a : t) {
          for (VertexId b : s) {
            if (a == b) ++common;
          }
        }
        if (common >= 2) {
          seen.insert(tj);
          stack.push_back(tj);
        }
      }
    }
    if (seen.size() != inc.size()) return false;
  }
  return true;
}

int TriangleMesh::euler_characteristic() const {
  build_adjacency();
  // Count only vertices referenced by at least one triangle; free vertices
  // are bookkeeping, not topology.
  int used = 0;
  for (std::size_t v = 0; v < verts_.size(); ++v) {
    if (!vert_tris_[v].empty()) ++used;
  }
  return used - static_cast<int>(edge_tris_.size()) +
         static_cast<int>(tris_.size());
}

bool TriangleMesh::all_ccw() const {
  for (const Tri& t : tris_) {
    if (signed_area2(position(t[0]), position(t[1]), position(t[2])) <= 0.0) {
      return false;
    }
  }
  return true;
}

void TriangleMesh::make_ccw() {
  bool changed = false;
  for (Tri& t : tris_) {
    if (signed_area2(position(t[0]), position(t[1]), position(t[2])) < 0.0) {
      std::swap(t[1], t[2]);
      changed = true;
    }
  }
  if (changed) invalidate();
}

}  // namespace anr
