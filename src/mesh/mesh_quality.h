// Mesh quality statistics.
//
// Used by tests to assert meshes are sane and by the pipeline bench to
// report the stage-by-stage state Fig. 2 of the paper visualizes.
#pragma once

#include <string>

#include "mesh/triangle_mesh.h"

namespace anr {

/// Aggregate statistics of a triangle mesh.
struct MeshStats {
  std::size_t vertices = 0;
  std::size_t triangles = 0;
  std::size_t edges = 0;
  std::size_t boundary_edges = 0;
  std::size_t boundary_loops = 0;
  int euler = 0;
  double min_angle_deg = 0.0;
  double max_angle_deg = 0.0;
  double min_edge = 0.0;
  double max_edge = 0.0;
  double mean_edge = 0.0;
  double total_area = 0.0;

  std::string summary() const;
};

/// Computes statistics; requires a vertex-manifold mesh for loop counting
/// (falls back to 0 loops otherwise).
MeshStats mesh_stats(const TriangleMesh& mesh);

}  // namespace anr
