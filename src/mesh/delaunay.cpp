#include "mesh/delaunay.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "common/check.h"
#include "geom/polygon.h"
#include "geom/predicates.h"

namespace anr {

namespace {

// Internal triangle record. Triangles touching the three synthetic "super"
// vertices are tested symbolically (super vertices act as points at
// infinity, CGAL-style); finite triangles cache their circumcircle.
struct TriRec {
  Tri t;            // CCW in the (jittered) working coordinates
  int supers = 0;   // how many vertices are super vertices
  Vec2 cc;          // circumcenter (finite triangles only)
  double r2 = 0.0;  // squared circumradius (finite triangles only)
  bool alive = true;
};

class Builder {
 public:
  explicit Builder(const std::vector<Vec2>& pts) : input_(pts) {
    const std::size_t n = pts.size();
    BBox bb;
    for (Vec2 p : pts) bb.expand(p);
    span_ = std::max({bb.width(), bb.height(), 1.0});
    Vec2 c = bb.center();

    // Symbolic-perturbation jitter: work on deterministically perturbed
    // copies so exactly collinear / cocircular inputs (densified polygon
    // edges, perfect lattices) never produce degenerate fills. Magnitude
    // ~1e-6 of the data span — geometrically negligible (sub-millimeter at
    // FoI scale) but large enough that transient triangles over near-
    // collinear chains keep well-conditioned circumcircles (circumradius
    // scales as L^2 / jitter). Output triangles reference the original
    // coordinates.
    work_ = pts;
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= (i + 1) * 0xbf58476d1ce4e5b9ull;
      h ^= h >> 31;
      double jx = static_cast<double>(h & 0xffff) / 65535.0 - 0.5;
      h *= 0x94d049bb133111ebull;
      h ^= h >> 29;
      double jy = static_cast<double>(h & 0xffff) / 65535.0 - 0.5;
      work_[i] += Vec2{jx, jy} * (2e-6 * span_);
    }

    s0_ = static_cast<int>(n);
    work_.push_back(c + Vec2{-2.0 * span_, -1.5 * span_});
    work_.push_back(c + Vec2{2.0 * span_, -1.5 * span_});
    work_.push_back(c + Vec2{0.0, 2.5 * span_});
    tris_.push_back(make_rec(Tri{s0_, s0_ + 1, s0_ + 2}));
  }

  TriangleMesh run() {
    for (int pi = 0; pi < s0_; ++pi) {
      insert(pi);
    }
    std::vector<Tri> out;
    for (const TriRec& tr : tris_) {
      if (tr.alive && tr.supers == 0) out.push_back(tr.t);
    }
    TriangleMesh mesh(input_, std::move(out));
    mesh.make_ccw();
    return mesh;
  }

 private:
  bool is_super(int v) const { return v >= s0_; }

  TriRec make_rec(Tri t) {
    TriRec tr;
    // Orient CCW in working coordinates (well-conditioned: super vertices
    // are only ~2.5 spans away, and symbolic tests never use their
    // circumcircles).
    if (signed_area2(work_[static_cast<std::size_t>(t[0])],
                     work_[static_cast<std::size_t>(t[1])],
                     work_[static_cast<std::size_t>(t[2])]) < 0.0) {
      std::swap(t[1], t[2]);
    }
    tr.t = t;
    for (int v : t) {
      if (is_super(v)) ++tr.supers;
    }
    if (tr.supers == 0) {
      Vec2 a = work_[static_cast<std::size_t>(t[0])];
      Vec2 b = work_[static_cast<std::size_t>(t[1])];
      Vec2 c = work_[static_cast<std::size_t>(t[2])];
      tr.cc = circumcenter(a, b, c);
      tr.r2 = distance2(tr.cc, a);
    }
    return tr;
  }

  // Conflict ("p inside circumcircle") test with super vertices treated as
  // points at infinity:
  //  - 0 supers: ordinary circumcircle test (inside-biased for borderline).
  //  - 1 super (u, v real, CCW (u,v,s)): the limit circle is the half-plane
  //    strictly left of u->v.
  //  - 2 supers (u real, A, B super): the limit circle is the half-plane
  //    through u bounded by the line parallel to A->B, on A/B's side.
  //  - 3 supers: the initial triangle, contains every input point.
  bool in_conflict(const TriRec& tr, Vec2 p) const {
    switch (tr.supers) {
      case 0:
        return distance2(p, tr.cc) <= tr.r2 * (1.0 + 1e-12);
      case 1: {
        int k = 0;
        while (!is_super(tr.t[static_cast<std::size_t>(k)])) ++k;
        Vec2 u = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 1) % 3)])];
        Vec2 v = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 2) % 3)])];
        return signed_area2(u, v, p) >= 0.0;
      }
      case 2: {
        int k = 0;
        while (is_super(tr.t[static_cast<std::size_t>(k)])) ++k;
        Vec2 u = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>(k)])];
        Vec2 a = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 1) % 3)])];
        Vec2 b = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 2) % 3)])];
        Vec2 d = b - a;
        double side_p = d.cross(p - u);
        double side_far = d.cross(a - u);
        return side_p * side_far >= 0.0;
      }
      default:
        return true;
    }
  }

  bool triangle_contains(const TriRec& tr, Vec2 p) const {
    return point_in_triangle(p, work_[static_cast<std::size_t>(tr.t[0])],
                             work_[static_cast<std::size_t>(tr.t[1])],
                             work_[static_cast<std::size_t>(tr.t[2])]);
  }

  // Edge -> alive triangle incidence, rebuilt per insertion (the cavity
  // search and the pinch repair both need it).
  std::map<EdgeKey, std::vector<int>> alive_edge_map() const {
    std::map<EdgeKey, std::vector<int>> em;
    for (std::size_t ti = 0; ti < tris_.size(); ++ti) {
      const TriRec& tr = tris_[ti];
      if (!tr.alive) continue;
      for (int k = 0; k < 3; ++k) {
        em[EdgeKey(tr.t[static_cast<std::size_t>(k)],
                   tr.t[static_cast<std::size_t>((k + 1) % 3)])]
            .push_back(static_cast<int>(ti));
      }
    }
    return em;
  }

  void insert(int pi) {
    Vec2 p = work_[static_cast<std::size_t>(pi)];
    auto em = alive_edge_map();

    // Seed: an alive triangle containing p (always exists — the symbolic
    // super triangles tile the rest of the plane).
    int seed = -1;
    for (std::size_t ti = 0; ti < tris_.size(); ++ti) {
      const TriRec& tr = tris_[ti];
      if (!tr.alive) continue;
      if (triangle_contains(tr, p) && in_conflict(tr, p)) {
        seed = static_cast<int>(ti);
        break;
      }
      if (seed < 0 && triangle_contains(tr, p)) seed = static_cast<int>(ti);
    }
    ANR_CHECK_MSG(seed >= 0, "no triangle contains the insertion point");

    // Cavity: BFS over shared edges through conflicting triangles only.
    // Growing from the containing triangle keeps the cavity connected even
    // when borderline conflict tests disagree far away (near-degenerate
    // inputs); stray "conflicting" islands are simply not excavated.
    std::vector<char> in_cavity(tris_.size(), 0);
    bad_.clear();
    bad_.push_back(seed);
    in_cavity[static_cast<std::size_t>(seed)] = 1;
    for (std::size_t head = 0; head < bad_.size(); ++head) {
      const TriRec& tr = tris_[static_cast<std::size_t>(bad_[head])];
      for (int k = 0; k < 3; ++k) {
        EdgeKey e(tr.t[static_cast<std::size_t>(k)],
                  tr.t[static_cast<std::size_t>((k + 1) % 3)]);
        for (int tj : em[e]) {
          if (in_cavity[static_cast<std::size_t>(tj)]) continue;
          if (!in_conflict(tris_[static_cast<std::size_t>(tj)], p)) continue;
          in_cavity[static_cast<std::size_t>(tj)] = 1;
          bad_.push_back(tj);
        }
      }
    }

    // Pinch repair: if a vertex appears on the cavity boundary more than
    // twice, absorb the smallest alive triangle fan at that vertex so the
    // boundary becomes a simple cycle. Only triggers inside the jitter-
    // scale degeneracy band; any consistent resolution is geometrically
    // fine there.
    for (int guard = 0;; ++guard) {
      ANR_CHECK_MSG(guard < 64, "cavity pinch repair did not converge");
      cavity_edges_.clear();
      for (int ti : bad_) {
        const TriRec& tr = tris_[static_cast<std::size_t>(ti)];
        for (int k = 0; k < 3; ++k) {
          ++cavity_edges_[EdgeKey(tr.t[static_cast<std::size_t>(k)],
                                  tr.t[static_cast<std::size_t>((k + 1) % 3)])];
        }
      }
      std::map<int, int> degree;
      for (const auto& [e, cnt] : cavity_edges_) {
        if (cnt == 1) {
          ++degree[e.a];
          ++degree[e.b];
        }
      }
      int pinch = -1;
      for (const auto& [v, d] : degree) {
        if (d > 2) {
          pinch = v;
          break;
        }
      }
      if (pinch < 0) break;

      // Group the alive, non-cavity triangles incident to `pinch` into
      // fans connected through edges at `pinch`; absorb the smallest fan.
      std::vector<int> candidates;
      for (std::size_t ti = 0; ti < tris_.size(); ++ti) {
        const TriRec& tr = tris_[ti];
        if (!tr.alive || in_cavity[ti]) continue;
        if (tr.t[0] == pinch || tr.t[1] == pinch || tr.t[2] == pinch) {
          candidates.push_back(static_cast<int>(ti));
        }
      }
      ANR_CHECK_MSG(!candidates.empty(), "pinched vertex with no free fan");
      std::vector<char> grouped(candidates.size(), 0);
      std::vector<int> best_fan;
      for (std::size_t s = 0; s < candidates.size(); ++s) {
        if (grouped[s]) continue;
        std::vector<int> fan{candidates[s]};
        grouped[s] = 1;
        for (std::size_t head = 0; head < fan.size(); ++head) {
          const TriRec& tr = tris_[static_cast<std::size_t>(fan[head])];
          for (int k = 0; k < 3; ++k) {
            VertexId a = tr.t[static_cast<std::size_t>(k)];
            VertexId b = tr.t[static_cast<std::size_t>((k + 1) % 3)];
            if (a != pinch && b != pinch) continue;
            for (int tj : em[EdgeKey(a, b)]) {
              for (std::size_t o = 0; o < candidates.size(); ++o) {
                if (!grouped[o] && candidates[o] == tj) {
                  grouped[o] = 1;
                  fan.push_back(tj);
                }
              }
            }
          }
        }
        if (best_fan.empty() || fan.size() < best_fan.size()) {
          best_fan = std::move(fan);
        }
      }
      for (int ti : best_fan) {
        in_cavity[static_cast<std::size_t>(ti)] = 1;
        bad_.push_back(ti);
      }
    }

    for (int ti : bad_) {
      tris_[static_cast<std::size_t>(ti)].alive = false;
    }
    for (const auto& [e, cnt] : cavity_edges_) {
      if (cnt != 1) continue;
      tris_.push_back(make_rec(Tri{e.a, e.b, pi}));
    }
  }

  const std::vector<Vec2>& input_;
  std::vector<Vec2> work_;
  double span_ = 1.0;
  int s0_ = 0;
  std::vector<TriRec> tris_;
  std::vector<int> bad_;
  std::map<EdgeKey, int> cavity_edges_;
};

}  // namespace

TriangleMesh delaunay(const std::vector<Vec2>& pts) {
  ANR_CHECK_MSG(pts.size() >= 3, "delaunay needs >= 3 points");
  Builder builder(pts);
  return builder.run();
}

}  // namespace anr
