#include "mesh/delaunay.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "geom/polygon.h"
#include "geom/predicates.h"

namespace anr {

namespace {

// Below this size insertions follow input order; above it a serpentine
// grid sort makes consecutive insertions spatial neighbors, so the
// walk-based point location stays O(1) expected per insert.
constexpr int kSpatialSortMin = 2048;

// Internal triangle record. Triangles touching the three synthetic "super"
// vertices are tested symbolically (super vertices act as points at
// infinity, CGAL-style); finite triangles cache their circumcircle.
struct TriRec {
  Tri t;            // CCW in the (jittered) working coordinates
  int supers = 0;   // how many vertices are super vertices
  Vec2 cc;          // circumcenter (finite triangles only)
  double r2 = 0.0;  // squared circumradius (finite triangles only)
  bool alive = true;
};

class Builder {
 public:
  explicit Builder(const std::vector<Vec2>& pts) : input_(pts) {
    const std::size_t n = pts.size();
    BBox bb;
    for (Vec2 p : pts) bb.expand(p);
    span_ = std::max({bb.width(), bb.height(), 1.0});
    lo_ = bb.lo;
    Vec2 c = bb.center();

    // Symbolic-perturbation jitter: work on deterministically perturbed
    // copies so exactly collinear / cocircular inputs (densified polygon
    // edges, perfect lattices) never produce degenerate fills. Magnitude
    // ~1e-6 of the data span — geometrically negligible (sub-millimeter at
    // FoI scale) but large enough that transient triangles over near-
    // collinear chains keep well-conditioned circumcircles (circumradius
    // scales as L^2 / jitter). Output triangles reference the original
    // coordinates.
    work_ = pts;
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= (i + 1) * 0xbf58476d1ce4e5b9ull;
      h ^= h >> 31;
      double jx = static_cast<double>(h & 0xffff) / 65535.0 - 0.5;
      h *= 0x94d049bb133111ebull;
      h ^= h >> 29;
      double jy = static_cast<double>(h & 0xffff) / 65535.0 - 0.5;
      work_[i] += Vec2{jx, jy} * (2e-6 * span_);
    }

    s0_ = static_cast<int>(n);
    work_.push_back(c + Vec2{-2.0 * span_, -1.5 * span_});
    work_.push_back(c + Vec2{2.0 * span_, -1.5 * span_});
    work_.push_back(c + Vec2{0.0, 2.5 * span_});

    // Location hint grid over the input bounding box: each cell remembers
    // the most recent finite triangle whose centroid landed in it, seeding
    // the adjacency walk near the query point.
    side_ = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(n) / 2.0)));
    hint_.assign(static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_), -1);

    tris_.reserve(4 * n + 16);
    em_.reserve(4 * n + 16);
    add_tri(Tri{s0_, s0_ + 1, s0_ + 2});
  }

  TriangleMesh run() {
    std::vector<int> order(static_cast<std::size_t>(s0_));
    std::iota(order.begin(), order.end(), 0);
    if (s0_ >= kSpatialSortMin) {
      // Serpentine (boustrophedon) cell order: row-major over coarse grid
      // cells, alternating column direction per row, input index as the
      // tie-break. Keeps consecutive insertions spatially adjacent.
      const int cols = std::max(1, static_cast<int>(
          std::sqrt(static_cast<double>(s0_) / 4.0)));
      const double cell = span_ / static_cast<double>(cols);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        Vec2 pa = work_[static_cast<std::size_t>(a)];
        Vec2 pb = work_[static_cast<std::size_t>(b)];
        int ya = std::clamp(static_cast<int>((pa.y - lo_.y) / cell), 0, cols - 1);
        int yb = std::clamp(static_cast<int>((pb.y - lo_.y) / cell), 0, cols - 1);
        if (ya != yb) return ya < yb;
        int xa = std::clamp(static_cast<int>((pa.x - lo_.x) / cell), 0, cols - 1);
        int xb = std::clamp(static_cast<int>((pb.x - lo_.x) / cell), 0, cols - 1);
        if ((ya & 1) != 0) {
          xa = cols - 1 - xa;
          xb = cols - 1 - xb;
        }
        if (xa != xb) return xa < xb;
        return a < b;
      });
    }
    for (int pi : order) {
      insert(pi);
    }
    std::vector<Tri> out;
    for (const TriRec& tr : tris_) {
      if (tr.alive && tr.supers == 0) out.push_back(tr.t);
    }
    TriangleMesh mesh(input_, std::move(out));
    mesh.make_ccw();
    return mesh;
  }

 private:
  bool is_super(int v) const { return v >= s0_; }

  static std::uint64_t edge_key(VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  // Persistent edge -> alive-triangle incidence (at most two per edge in a
  // valid triangulation), updated as triangles are created and killed. This
  // replaces the per-insertion O(n log n) rebuild of a full edge map.
  void link_edges(int ti) {
    const Tri& t = tris_[static_cast<std::size_t>(ti)].t;
    for (int k = 0; k < 3; ++k) {
      auto [it, inserted] =
          em_.try_emplace(edge_key(t[static_cast<std::size_t>(k)],
                                   t[static_cast<std::size_t>((k + 1) % 3)]),
                          std::array<int, 2>{-1, -1});
      auto& slots = it->second;
      if (slots[0] < 0) {
        slots[0] = ti;
      } else if (slots[1] < 0) {
        slots[1] = ti;
      } else {
        ANR_CHECK_MSG(false, "edge incident to more than two alive triangles");
      }
    }
  }

  void unlink_edges(int ti) {
    const Tri& t = tris_[static_cast<std::size_t>(ti)].t;
    for (int k = 0; k < 3; ++k) {
      std::uint64_t key = edge_key(t[static_cast<std::size_t>(k)],
                                   t[static_cast<std::size_t>((k + 1) % 3)]);
      auto it = em_.find(key);
      ANR_CHECK_MSG(it != em_.end(), "unlinking an unregistered edge");
      auto& slots = it->second;
      if (slots[0] == ti) slots[0] = -1;
      if (slots[1] == ti) slots[1] = -1;
      if (slots[0] < 0 && slots[1] < 0) em_.erase(it);
    }
  }

  int neighbor_across(VertexId a, VertexId b, int self) const {
    auto it = em_.find(edge_key(a, b));
    if (it == em_.end()) return -1;
    if (it->second[0] != self && it->second[0] >= 0) return it->second[0];
    if (it->second[1] != self && it->second[1] >= 0) return it->second[1];
    return -1;
  }

  int add_tri(Tri t) {
    TriRec tr;
    // Orient CCW in working coordinates (well-conditioned: super vertices
    // are only ~2.5 spans away, and symbolic tests never use their
    // circumcircles).
    if (signed_area2(work_[static_cast<std::size_t>(t[0])],
                     work_[static_cast<std::size_t>(t[1])],
                     work_[static_cast<std::size_t>(t[2])]) < 0.0) {
      std::swap(t[1], t[2]);
    }
    tr.t = t;
    for (int v : t) {
      if (is_super(v)) ++tr.supers;
    }
    if (tr.supers == 0) {
      Vec2 a = work_[static_cast<std::size_t>(t[0])];
      Vec2 b = work_[static_cast<std::size_t>(t[1])];
      Vec2 c = work_[static_cast<std::size_t>(t[2])];
      tr.cc = circumcenter(a, b, c);
      tr.r2 = distance2(tr.cc, a);
    }
    int ti = static_cast<int>(tris_.size());
    tris_.push_back(tr);
    link_edges(ti);
    last_tri_ = ti;
    if (tr.supers == 0) {
      Vec2 centroid = (work_[static_cast<std::size_t>(t[0])] +
                       work_[static_cast<std::size_t>(t[1])] +
                       work_[static_cast<std::size_t>(t[2])]) *
                      (1.0 / 3.0);
      hint_[hint_cell(centroid)] = ti;
    }
    return ti;
  }

  std::size_t hint_cell(Vec2 p) const {
    double cell = span_ / static_cast<double>(side_);
    int cx = std::clamp(static_cast<int>((p.x - lo_.x) / cell), 0, side_ - 1);
    int cy = std::clamp(static_cast<int>((p.y - lo_.y) / cell), 0, side_ - 1);
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(side_) +
           static_cast<std::size_t>(cx);
  }

  // Conflict ("p inside circumcircle") test with super vertices treated as
  // points at infinity:
  //  - 0 supers: ordinary circumcircle test (inside-biased for borderline).
  //  - 1 super (u, v real, CCW (u,v,s)): the limit circle is the half-plane
  //    strictly left of u->v.
  //  - 2 supers (u real, A, B super): the limit circle is the half-plane
  //    through u bounded by the line parallel to A->B, on A/B's side.
  //  - 3 supers: the initial triangle, contains every input point.
  bool in_conflict(const TriRec& tr, Vec2 p) const {
    switch (tr.supers) {
      case 0:
        return distance2(p, tr.cc) <= tr.r2 * (1.0 + 1e-12);
      case 1: {
        int k = 0;
        while (!is_super(tr.t[static_cast<std::size_t>(k)])) ++k;
        Vec2 u = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 1) % 3)])];
        Vec2 v = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 2) % 3)])];
        return signed_area2(u, v, p) >= 0.0;
      }
      case 2: {
        int k = 0;
        while (is_super(tr.t[static_cast<std::size_t>(k)])) ++k;
        Vec2 u = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>(k)])];
        Vec2 a = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 1) % 3)])];
        Vec2 b = work_[static_cast<std::size_t>(tr.t[static_cast<std::size_t>((k + 2) % 3)])];
        Vec2 d = b - a;
        double side_p = d.cross(p - u);
        double side_far = d.cross(a - u);
        return side_p * side_far >= 0.0;
      }
      default:
        return true;
    }
  }

  bool triangle_contains(const TriRec& tr, Vec2 p) const {
    return point_in_triangle(p, work_[static_cast<std::size_t>(tr.t[0])],
                             work_[static_cast<std::size_t>(tr.t[1])],
                             work_[static_cast<std::size_t>(tr.t[2])]);
  }

  // Straight walk from `start` toward p: repeatedly step across an edge
  // whose supporting line separates the current triangle from p. Super
  // vertices have concrete far coordinates, so the walk is uniform over the
  // whole (super-)triangulation. Returns a triangle containing p, or -1 if
  // the step limit trips (epsilon cycling on degenerate inputs) — callers
  // fall back to the exhaustive scan.
  int locate_walk(Vec2 p, int start) const {
    int cur = start;
    const int limit =
        96 + 4 * static_cast<int>(std::sqrt(static_cast<double>(tris_.size())));
    for (int step = 0; step < limit; ++step) {
      const TriRec& tr = tris_[static_cast<std::size_t>(cur)];
      int nxt = -1;
      for (int k = 0; k < 3 && nxt < 0; ++k) {
        VertexId a = tr.t[static_cast<std::size_t>(k)];
        VertexId b = tr.t[static_cast<std::size_t>((k + 1) % 3)];
        if (signed_area2(work_[static_cast<std::size_t>(a)],
                         work_[static_cast<std::size_t>(b)], p) < 0.0) {
          nxt = neighbor_across(a, b, cur);
        }
      }
      if (nxt < 0) return cur;
      cur = nxt;
    }
    return -1;
  }

  void insert(int pi) {
    Vec2 p = work_[static_cast<std::size_t>(pi)];

    // Seed: an alive triangle containing p (always exists — the symbolic
    // super triangles tile the rest of the plane). Fast path: walk from the
    // hint-grid triangle (or the most recently created one); the exhaustive
    // scan only runs when the walk lands on a borderline non-conflicting
    // triangle, preserving the scan's exact tie-breaking there.
    int seed = -1;
    int start = hint_[hint_cell(p)];
    if (start < 0 || !tris_[static_cast<std::size_t>(start)].alive) {
      start = last_tri_;
    }
    int loc = locate_walk(p, start);
    if (loc >= 0 && triangle_contains(tris_[static_cast<std::size_t>(loc)], p) &&
        in_conflict(tris_[static_cast<std::size_t>(loc)], p)) {
      seed = loc;
    }
    if (seed < 0) {
      for (std::size_t ti = 0; ti < tris_.size(); ++ti) {
        const TriRec& tr = tris_[ti];
        if (!tr.alive) continue;
        if (triangle_contains(tr, p) && in_conflict(tr, p)) {
          seed = static_cast<int>(ti);
          break;
        }
        if (seed < 0 && triangle_contains(tr, p)) seed = static_cast<int>(ti);
      }
    }
    ANR_CHECK_MSG(seed >= 0, "no triangle contains the insertion point");

    // Cavity: BFS over shared edges through conflicting triangles only.
    // Growing from the containing triangle keeps the cavity connected even
    // when borderline conflict tests disagree far away (near-degenerate
    // inputs); stray "conflicting" islands are simply not excavated.
    // Generation-stamped marks avoid an O(tris) clear per insertion.
    if (stamp_.size() < tris_.size()) stamp_.resize(tris_.size(), 0);
    ++gen_;
    bad_.clear();
    bad_.push_back(seed);
    stamp_[static_cast<std::size_t>(seed)] = gen_;
    for (std::size_t head = 0; head < bad_.size(); ++head) {
      const TriRec& tr = tris_[static_cast<std::size_t>(bad_[head])];
      for (int k = 0; k < 3; ++k) {
        auto it = em_.find(edge_key(tr.t[static_cast<std::size_t>(k)],
                                    tr.t[static_cast<std::size_t>((k + 1) % 3)]));
        if (it == em_.end()) continue;
        for (int tj : it->second) {
          if (tj < 0 || stamp_[static_cast<std::size_t>(tj)] == gen_) continue;
          if (!in_conflict(tris_[static_cast<std::size_t>(tj)], p)) continue;
          stamp_[static_cast<std::size_t>(tj)] = gen_;
          bad_.push_back(tj);
        }
      }
    }

    // Pinch repair: if a vertex appears on the cavity boundary more than
    // twice, absorb the smallest alive triangle fan at that vertex so the
    // boundary becomes a simple cycle. Only triggers inside the jitter-
    // scale degeneracy band; any consistent resolution is geometrically
    // fine there.
    for (int guard = 0;; ++guard) {
      ANR_CHECK_MSG(guard < 64, "cavity pinch repair did not converge");
      cavity_edges_.clear();
      for (int ti : bad_) {
        const TriRec& tr = tris_[static_cast<std::size_t>(ti)];
        for (int k = 0; k < 3; ++k) {
          ++cavity_edges_[EdgeKey(tr.t[static_cast<std::size_t>(k)],
                                  tr.t[static_cast<std::size_t>((k + 1) % 3)])];
        }
      }
      std::map<int, int> degree;
      for (const auto& [e, cnt] : cavity_edges_) {
        if (cnt == 1) {
          ++degree[e.a];
          ++degree[e.b];
        }
      }
      int pinch = -1;
      for (const auto& [v, d] : degree) {
        if (d > 2) {
          pinch = v;
          break;
        }
      }
      if (pinch < 0) break;

      // Group the alive, non-cavity triangles incident to `pinch` into
      // fans connected through edges at `pinch`; absorb the smallest fan.
      std::vector<int> candidates;
      for (std::size_t ti = 0; ti < tris_.size(); ++ti) {
        const TriRec& tr = tris_[ti];
        if (!tr.alive || stamp_[ti] == gen_) continue;
        if (tr.t[0] == pinch || tr.t[1] == pinch || tr.t[2] == pinch) {
          candidates.push_back(static_cast<int>(ti));
        }
      }
      ANR_CHECK_MSG(!candidates.empty(), "pinched vertex with no free fan");
      std::vector<char> grouped(candidates.size(), 0);
      std::vector<int> best_fan;
      for (std::size_t s = 0; s < candidates.size(); ++s) {
        if (grouped[s]) continue;
        std::vector<int> fan{candidates[s]};
        grouped[s] = 1;
        for (std::size_t head = 0; head < fan.size(); ++head) {
          const TriRec& tr = tris_[static_cast<std::size_t>(fan[head])];
          for (int k = 0; k < 3; ++k) {
            VertexId a = tr.t[static_cast<std::size_t>(k)];
            VertexId b = tr.t[static_cast<std::size_t>((k + 1) % 3)];
            if (a != pinch && b != pinch) continue;
            auto it = em_.find(edge_key(a, b));
            if (it == em_.end()) continue;
            for (int tj : it->second) {
              if (tj < 0) continue;
              for (std::size_t o = 0; o < candidates.size(); ++o) {
                if (!grouped[o] && candidates[o] == tj) {
                  grouped[o] = 1;
                  fan.push_back(tj);
                }
              }
            }
          }
        }
        if (best_fan.empty() || fan.size() < best_fan.size()) {
          best_fan = std::move(fan);
        }
      }
      for (int ti : best_fan) {
        stamp_[static_cast<std::size_t>(ti)] = gen_;
        bad_.push_back(ti);
      }
    }

    for (int ti : bad_) {
      tris_[static_cast<std::size_t>(ti)].alive = false;
      unlink_edges(ti);
    }
    for (const auto& [e, cnt] : cavity_edges_) {
      if (cnt != 1) continue;
      add_tri(Tri{e.a, e.b, pi});
    }
  }

  const std::vector<Vec2>& input_;
  std::vector<Vec2> work_;
  double span_ = 1.0;
  Vec2 lo_;
  int s0_ = 0;
  std::vector<TriRec> tris_;
  std::vector<int> bad_;
  std::map<EdgeKey, int> cavity_edges_;
  std::unordered_map<std::uint64_t, std::array<int, 2>> em_;
  std::vector<int> stamp_;
  int gen_ = 0;
  int last_tri_ = 0;
  int side_ = 1;
  std::vector<int> hint_;
};

}  // namespace

TriangleMesh delaunay(const std::vector<Vec2>& pts) {
  ANR_CHECK_MSG(pts.size() >= 3, "delaunay needs >= 3 points");
  Builder builder(pts);
  return builder.run();
}

}  // namespace anr
