// Indexed triangle mesh with adjacency queries.
//
// This is the shared mesh representation for (1) the triangulation T
// extracted from the robots' connectivity graph in M1 and (2) the gridded
// triangulation of the target FoI M2. Both get harmonic-mapped to the unit
// disk, so the mesh must expose boundary structure and vertex neighborhoods.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "geom/vec2.h"

namespace anr {

/// Vertex index into a TriangleMesh.
using VertexId = int;

/// Triangle as a CCW triple of vertex indices.
using Tri = std::array<VertexId, 3>;

/// Undirected edge with ordered endpoints (a < b).
struct EdgeKey {
  VertexId a;
  VertexId b;

  EdgeKey(VertexId u, VertexId v) : a(u < v ? u : v), b(u < v ? v : u) {}
  auto operator<=>(const EdgeKey&) const = default;
};

/// Indexed triangle mesh. Vertices carry 2D positions; triangles index
/// into the vertex array. Adjacency (vertex neighbors, edge->triangle
/// incidence) is rebuilt lazily after structural edits.
///
/// Thread safety: const queries (including the lazy adjacency build they
/// trigger) are safe to call concurrently on a shared mesh — the runtime
/// layer plans from one cached planner on many worker threads. Structural
/// edits still require external synchronization against all other access.
class TriangleMesh {
 public:
  TriangleMesh() = default;
  TriangleMesh(std::vector<Vec2> vertices, std::vector<Tri> triangles);

  // The adjacency cache carries a mutex, so copies/moves are spelled out
  // (they transfer the geometry and any built cache, never the lock).
  TriangleMesh(const TriangleMesh& other);
  TriangleMesh& operator=(const TriangleMesh& other);
  TriangleMesh(TriangleMesh&& other) noexcept;
  TriangleMesh& operator=(TriangleMesh&& other) noexcept;

  // --- structure -----------------------------------------------------------

  VertexId add_vertex(Vec2 p);
  void add_triangle(Tri t);
  void set_triangles(std::vector<Tri> tris);

  std::size_t num_vertices() const { return verts_.size(); }
  std::size_t num_triangles() const { return tris_.size(); }

  Vec2 position(VertexId v) const { return verts_[static_cast<std::size_t>(v)]; }
  void set_position(VertexId v, Vec2 p) { verts_[static_cast<std::size_t>(v)] = p; }
  const std::vector<Vec2>& positions() const { return verts_; }
  const std::vector<Tri>& triangles() const { return tris_; }

  // --- adjacency (valid after build_adjacency; rebuilt automatically) ------

  /// Recomputes neighbor lists and edge incidence. Called automatically by
  /// the queries below when the mesh changed since the last build.
  void build_adjacency() const;

  /// Sorted unique neighbor vertex ids of v (vertices sharing an edge).
  const std::vector<VertexId>& neighbors(VertexId v) const;

  /// All undirected edges.
  std::vector<EdgeKey> edges() const;

  /// Number of triangles incident to edge (u, v); 0 when no such edge.
  int edge_triangle_count(VertexId u, VertexId v) const;

  /// Edges incident to exactly one triangle.
  std::vector<EdgeKey> boundary_edges() const;

  /// True when v lies on some boundary edge.
  bool is_boundary_vertex(VertexId v) const;

  /// Triangle indices incident to vertex v.
  const std::vector<int>& vertex_triangles(VertexId v) const;

  // --- validation ----------------------------------------------------------

  /// True when every edge has at most two incident triangles.
  bool edge_manifold() const;

  /// True when each vertex's incident triangles form a single fan
  /// (no bowtie vertices). Implies edge_manifold over those triangles.
  bool vertex_manifold() const;

  /// Euler characteristic V - E + F.
  int euler_characteristic() const;

  /// True when every triangle has positive signed area (consistent CCW).
  bool all_ccw() const;

  /// Orients every triangle CCW by its vertex positions.
  void make_ccw();

 private:
  void invalidate() { adjacency_valid_.store(false, std::memory_order_release); }

  std::vector<Vec2> verts_;
  std::vector<Tri> tris_;

  // Lazily-built adjacency caches. Double-checked: the atomic flag makes
  // the fast path lock-free once built; the mutex serializes the build so
  // concurrent const queries never race on the cache vectors.
  mutable std::atomic<bool> adjacency_valid_{false};
  mutable std::mutex adjacency_mutex_;
  mutable std::vector<std::vector<VertexId>> nbr_;
  mutable std::vector<std::vector<int>> vert_tris_;
  mutable std::map<EdgeKey, int> edge_tris_;
};

}  // namespace anr
