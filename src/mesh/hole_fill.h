// Virtual-vertex hole filling (paper Sec. III-D-3).
//
// Harmonic map to a disk requires disk topology. A FoI (or robot
// triangulation) with holes gets each hole loop filled by one *virtual*
// vertex placed at the loop's vertex average, fanned to every loop vertex.
// Virtual vertices participate in the relaxation like interior vertices;
// virtual triangles are excluded when interpolating robot targets (a robot
// landing in one is snapped to the nearest real grid point instead).
#pragma once

#include <vector>

#include "mesh/boundary.h"
#include "mesh/triangle_mesh.h"

namespace anr {

/// Result of filling holes.
struct HoleFillResult {
  TriangleMesh mesh;                 ///< disk-topology mesh
  std::vector<VertexId> virtual_vertices;  ///< one per filled hole
  std::vector<char> triangle_is_virtual;   ///< parallel to mesh.triangles()
  std::size_t holes_filled = 0;
};

/// Fills every non-outer boundary loop of `mesh` with a virtual vertex fan.
/// The input must be vertex-manifold with at least one boundary loop.
HoleFillResult fill_holes(const TriangleMesh& mesh);

}  // namespace anr
