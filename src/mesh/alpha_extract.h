// Shape-aware triangulation extraction from a point set.
//
// The robots' connectivity graph in a concave FoI is *not* the convex-hull
// Delaunay triangulation: triangles spanning a concavity would use links
// longer than the communication range r_c. This module keeps only Delaunay
// triangles whose edges all fit within `alpha` (= r_c), then cleans the
// result down to a single edge-connected, vertex-manifold component —
// exactly the disk-topology triangulation T the harmonic map needs.
#pragma once

#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr {

/// Result of alpha extraction.
struct AlphaExtraction {
  TriangleMesh mesh;            ///< cleaned triangulation (all input vertices
                                ///< present; some may be unreferenced)
  std::vector<VertexId> unmeshed;  ///< vertices not in any kept triangle
};

/// Extracts the alpha-complex-style triangulation of `pts` with edge-length
/// threshold `alpha`, keeps the largest edge-connected triangle component,
/// and iteratively removes triangles at bowtie vertices until the mesh is
/// vertex-manifold.
AlphaExtraction alpha_extract(const std::vector<Vec2>& pts, double alpha);

/// Same cleanup applied to an existing triangle soup over `pts`.
AlphaExtraction clean_to_manifold(TriangleMesh mesh);

}  // namespace anr
