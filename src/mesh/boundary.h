// Boundary loop extraction.
//
// Harmonic mapping pins the mesh's *outer* boundary loop to the unit
// circle; hole loops get filled with virtual vertices. The paper's
// distributed version walks the loop with a hop-counting message
// (src/net/protocols/boundary_walk); this is the centralized equivalent,
// used by the FoI mesher and as the oracle in equivalence tests.
#pragma once

#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr {

/// One closed boundary loop as an ordered vertex cycle.
struct BoundaryLoop {
  std::vector<VertexId> vertices;

  /// Sum of edge lengths around the loop.
  double length(const TriangleMesh& mesh) const;
};

/// All boundary loops of `mesh` (edges incident to exactly one triangle,
/// chained into cycles). Requires a vertex-manifold mesh.
std::vector<BoundaryLoop> boundary_loops(const TriangleMesh& mesh);

/// Index into `loops` of the outer boundary — the loop with the largest
/// enclosed bounding-box area (holes are strictly inside it).
std::size_t outer_loop_index(const TriangleMesh& mesh,
                             const std::vector<BoundaryLoop>& loops);

}  // namespace anr
