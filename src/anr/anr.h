// libanr — public API umbrella.
//
// Reproduction of "Optimal Marching of Autonomous Networked Robots"
// (Ban, Jin, Wu — ICDCS 2016). Typical usage:
//
//   #include "anr/anr.h"
//
//   anr::Scenario sc = anr::scenario(3);
//   auto deploy = anr::optimal_coverage_positions(
//       sc.m1, sc.num_robots, /*seed=*/1, anr::uniform_density());
//   anr::MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range);
//   anr::Vec2 offset = sc.m2_at(20.0).centroid() - sc.m2_shape.centroid();
//   anr::MarchPlan plan = planner.plan(deploy.positions, offset);
//   anr::TransitionMetrics m = anr::simulate_transition(
//       plan.trajectories, sc.comm_range, plan.transition_end);
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#pragma once

#include "baselines/direct_translation.h"
#include "baselines/hungarian_march.h"
#include "baselines/virtual_force.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/task_arena.h"
#include "coverage/coverage_eval.h"
#include "coverage/density.h"
#include "coverage/grid_cvt.h"
#include "coverage/lloyd.h"
#include "coverage/local_voronoi.h"
#include "coverage/voronoi.h"
#include "fault/fault_model.h"
#include "fault/fault_schedule.h"
#include "foi/foi.h"
#include "foi/foi_mesher.h"
#include "foi/indoor.h"
#include "foi/scenario.h"
#include "foi/shapes.h"
#include "geom/barycentric.h"
#include "geom/polygon.h"
#include "geom/vec2.h"
#include "harmonic/composition.h"
#include "io/event_io.h"
#include "io/job_io.h"
#include "io/json.h"
#include "io/metrics_io.h"
#include "io/plan_io.h"
#include "harmonic/disk_map.h"
#include "harmonic/distributed_disk_map.h"
#include "harmonic/rotation_search.h"
#include "march/decentralized_engine.h"
#include "march/execution_engine.h"
#include "march/local_controller.h"
#include "march/metrics.h"
#include "march/mission.h"
#include "march/planner.h"
#include "march/repair.h"
#include "march/resilience.h"
#include "march/trajectory.h"
#include "march/transition_sim.h"
#include "march/triangulation_extract.h"
#include "matching/hungarian.h"
#include "mesh/alpha_extract.h"
#include "mesh/boundary.h"
#include "mesh/delaunay.h"
#include "mesh/hole_fill.h"
#include "mesh/mesh_quality.h"
#include "mesh/triangle_mesh.h"
#include "net/connectivity.h"
#include "net/connectivity_monitor.h"
#include "net/fault_bridge.h"
#include "net/incremental_connectivity.h"
#include "net/network.h"
#include "net/protocols/boundary_walk.h"
#include "net/protocols/flood.h"
#include "net/protocols/gossip.h"
#include "net/protocols/relax.h"
#include "net/protocols/subgroup.h"
#include "net/unit_disk_graph.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/mission_service.h"
#include "runtime/planner_cache.h"
#include "shard/placement.h"
#include "shard/router.h"
#include "shard/shard_map.h"
#include "terrain/height_field.h"
#include "terrain/surface_metrics.h"
#include "terrain/surface_planner.h"
#include "viz/svg.h"
