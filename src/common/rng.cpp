#include "common/rng.h"

// Rng is header-only today; this TU anchors the target so the build file
// stays uniform (one .cpp per module).
