// Monotonic wall-clock stopwatch for coarse phase timing in benches.
#pragma once

#include <chrono>

namespace anr {

/// Starts on construction; `seconds()`/`millis()` read elapsed time.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace anr
