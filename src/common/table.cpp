#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace anr {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());

  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_pct(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v * 100.0 << "%";
  return os.str();
}

}  // namespace anr
