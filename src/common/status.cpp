#include "common/status.h"

namespace anr {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  return std::string(status_code_name(code_)) + ": " + message_;
}

}  // namespace anr
