// Shared non-cryptographic hashing primitives.
//
// Three small building blocks used across the runtime and shard layers:
//
//   - fnv1a64: byte-string hashing (planner-cache fingerprints). Stable
//     across platforms and process runs — cache keys and shard placement
//     both depend on that stability.
//   - splitmix64: a finalizing 64-bit mixer. Used to decorrelate
//     structured inputs (FNV output, sequence counters) before feeding
//     them to bucket-mapping functions.
//   - jump_consistent_hash: Lamping & Veach's jump consistent hash,
//     mapping a 64-bit key to one of n buckets such that growing n to
//     n+1 moves only ~1/(n+1) of keys (and shrinking is the inverse).
//     This is the placement primitive of src/shard/ — the same idea the
//     DAOS placement layer uses to lay objects out across fault domains.
//
// Everything here is pure, allocation-free, and header-only; values are
// pinned by tests/test_hash.cpp so an accidental change to any constant
// shows up as a test failure, not as a silently reshuffled cache/shard
// assignment.
#pragma once

#include <cstdint>
#include <string_view>

namespace anr {

/// FNV-1a over a byte string. Deterministic across platforms; the empty
/// string hashes to the FNV offset basis 0xcbf29ce484222325.
constexpr std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;  // offset basis
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

/// SplitMix64 finalizer (Steele, Lea, Flood). Bijective on uint64, with
/// strong avalanche — every input bit flips ~half the output bits.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Jump consistent hash (Lamping & Veach, "A Fast, Minimal Memory,
/// Consistent Hash Algorithm"): key -> bucket in [0, num_buckets).
/// Growing num_buckets by one relocates only ~1/(num_buckets+1) of the
/// key space; all other keys keep their bucket. Feed structured keys
/// through splitmix64 first — the internal LCG walk assumes the key is
/// already well mixed. num_buckets must be >= 1.
constexpr int jump_consistent_hash(std::uint64_t key, int num_buckets) {
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < num_buckets) {
    b = j;
    key = key * 2862933555777941757ull + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1ll << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<int>(b);
}

}  // namespace anr
