// Intra-plan fork-join parallelism: a process-wide lazily-started worker
// pool behind two loop primitives.
//
// Design constraints (they shape every signature here):
//
//   * Determinism. Plans must be byte-identical at every thread count, so
//     parallel_chunks() fixes its chunk boundaries from (n, grain) alone
//     — never from the worker count — and callers merge per-chunk
//     partials in chunk-index order. Chunks may *execute* in any order on
//     any worker; nothing observable depends on that order.
//   * Nesting safety. A parallel region entered from inside another
//     parallel region runs serially inline (chunk 0, 1, 2, ... on the
//     calling thread). The planner's stages compose freely: a parallel
//     rotation search whose candidates call the (itself parallel)
//     interpolator just runs the inner loops serially per candidate.
//   * Exceptions. The pending exception with the lowest chunk index is
//     rethrown in the caller — the same exception the serial execution
//     would have thrown first.
//
// Thread count resolution: set_arena_threads(n) overrides; otherwise the
// ANR_THREADS environment variable; otherwise hardware concurrency.
// One effective thread means every region runs serially inline and no
// pool is ever started.
#pragma once

#include <cstddef>
#include <functional>

namespace anr {

/// Effective intra-op thread count (>= 1).
int arena_threads();

/// Sets the intra-op thread count; n <= 0 re-resolves the default
/// (ANR_THREADS, else hardware concurrency). Process-wide: services that
/// trade job-level for plan-level parallelism set this once at startup.
/// Changing it never changes plan bytes — only how many workers help.
void set_arena_threads(int n);

/// True while the calling thread is executing a parallel region's body
/// (the condition under which nested calls fall back to serial).
bool in_parallel_region();

/// Runs body(chunk, begin, end) for every grain-sized chunk of [0, n):
/// chunk c covers [c*grain, min((c+1)*grain, n)). Boundaries depend only
/// on (n, grain); see the determinism note above. Blocks until every
/// chunk finished (or rethrows the lowest-index pending exception).
void parallel_chunks(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t chunk,
                                              std::size_t begin,
                                              std::size_t end)>& body);

/// Convenience wrapper: body(i) for every i in [0, n), with a grain
/// picked for load balance. Only for bodies whose iterations touch
/// disjoint state — per-index writes, no cross-iteration reductions
/// (reductions need parallel_chunks' fixed boundaries to merge
/// deterministically).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace anr
