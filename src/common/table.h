// Plain-text table formatting for benchmark output.
//
// Every bench binary prints rows that mirror a table or figure of the
// paper; TextTable keeps those aligned and easy to diff between runs.
#pragma once

#include <string>
#include <vector>

namespace anr {

/// Column-aligned plain-text table. Add a header once, then rows; `str()`
/// renders everything with per-column widths.
class TextTable {
 public:
  /// Sets (replaces) the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Row length may differ from the header; shorter
  /// rows render with trailing blanks.
  void row(std::vector<std::string> cells);

  /// Renders the table, header separated by a dashed rule.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` decimal places.
std::string fmt(double v, int digits = 3);

/// Formats `v` as a percentage (value 0.873 -> "87.3%").
std::string fmt_pct(double v, int digits = 1);

}  // namespace anr
