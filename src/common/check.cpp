#include "common/check.h"

#include <sstream>

namespace anr::detail {

void check_failed(const char* expr, const std::string& msg,
                  std::source_location loc) {
  std::ostringstream os;
  os << "ANR_CHECK failed: (" << expr << ") at " << loc.file_name() << ":"
     << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw ContractViolation(os.str());
}

}  // namespace anr::detail
