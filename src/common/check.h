// Lightweight runtime-contract checking for libanr.
//
// ANR_CHECK fires in all build types: the algorithms in this library are
// geometric and distributed, where a silently-violated invariant (a
// non-manifold mesh, an unsorted boundary loop) produces garbage results
// far from the root cause. Failing fast with a message beats debugging a
// wrong harmonic map. ANR_DCHECK compiles out in NDEBUG builds and is used
// on hot inner loops.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace anr {

/// Thrown when a runtime contract (ANR_CHECK / ANR_ENSURE) is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const std::string& msg,
                               std::source_location loc);
}  // namespace detail

}  // namespace anr

#define ANR_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::anr::detail::check_failed(#expr, "", std::source_location::current()); \
    }                                                                       \
  } while (false)

#define ANR_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::anr::detail::check_failed(#expr, (msg), std::source_location::current()); \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define ANR_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define ANR_DCHECK(expr) ANR_CHECK(expr)
#endif
