#include "common/task_arena.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace anr {

namespace {

constexpr int kMaxThreads = 256;

int clamp_threads(long n) {
  if (n < 1) return 1;
  if (n > kMaxThreads) return kMaxThreads;
  return static_cast<int>(n);
}

int resolve_default() {
  if (const char* env = std::getenv("ANR_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return clamp_threads(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return clamp_threads(hw == 0 ? 1 : static_cast<long>(hw));
}

std::atomic<int>& effective_threads() {
  static std::atomic<int> threads{resolve_default()};
  return threads;
}

thread_local bool tl_in_region = false;

// One fork-join invocation. Participants (the caller plus any helping
// workers) claim chunk indices from `next`; completion and the winning
// exception are tracked under `mu`.
struct Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr err;
  std::size_t err_chunk = 0;
};

// Runs chunks of `job` on the calling thread until none remain. Both
// workers and the dispatching caller execute this.
void process(Job& job) {
  bool prev = tl_in_region;
  tl_in_region = true;
  for (;;) {
    std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    std::size_t begin = c * job.grain;
    std::size_t end = begin + job.grain;
    if (end > job.n) end = job.n;
    std::exception_ptr err;
    try {
      (*job.body)(c, begin, end);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(job.mu);
    if (err && (!job.err || c < job.err_chunk)) {
      job.err = err;
      job.err_chunk = c;
    }
    if (++job.done == job.num_chunks) job.done_cv.notify_all();
  }
  tl_in_region = prev;
}

// The process-wide pool. Dispatch pushes one "help ticket" (a shared_ptr
// to the job) per desired helper; a worker consumes a ticket, drains the
// job, and goes back to sleep. Tickets for already-finished jobs are
// harmless — process() finds no chunk and returns. Workers are spawned
// lazily, only as dispatches ask for them, and joined at process exit.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(const std::shared_ptr<Job>& job, int helpers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (static_cast<int>(workers_.size()) < helpers &&
             static_cast<int>(workers_.size()) < kMaxThreads - 1) {
        workers_.emplace_back([this] { worker_loop(); });
      }
      for (int h = 0; h < helpers; ++h) tickets_.push_back(job);
    }
    wake_cv_.notify_all();

    process(*job);
    {
      std::unique_lock<std::mutex> lock(job->mu);
      job->done_cv.wait(lock, [&] { return job->done == job->num_chunks; });
    }
    if (job->err) std::rethrow_exception(job->err);
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock, [&] { return stop_ || !tickets_.empty(); });
        if (stop_) return;
        job = std::move(tickets_.front());
        tickets_.pop_front();
      }
      process(*job);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::deque<std::shared_ptr<Job>> tickets_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace

int arena_threads() {
  return effective_threads().load(std::memory_order_relaxed);
}

void set_arena_threads(int n) {
  effective_threads().store(n <= 0 ? resolve_default() : clamp_threads(n),
                            std::memory_order_relaxed);
}

bool in_parallel_region() { return tl_in_region; }

void parallel_chunks(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (n + grain - 1) / grain;
  const int threads = arena_threads();

  if (threads <= 1 || num_chunks <= 1 || tl_in_region) {
    // Serial inline: chunk-index order, so the first exception thrown is
    // the lowest-index one — the same one the parallel path rethrows.
    for (std::size_t c = 0; c < num_chunks; ++c) {
      std::size_t begin = c * grain;
      std::size_t end = begin + grain;
      if (end > n) end = n;
      body(c, begin, end);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->grain = grain;
  job->num_chunks = num_chunks;
  int helpers = threads - 1;
  if (static_cast<std::size_t>(helpers) > num_chunks - 1) {
    helpers = static_cast<int>(num_chunks - 1);
  }
  Pool::instance().run(job, helpers);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t threads = static_cast<std::size_t>(arena_threads());
  // ~4 chunks per thread for load balance; boundaries are irrelevant to
  // the output because iterations are independent by contract.
  std::size_t grain = n / (threads * 4);
  if (grain == 0) grain = 1;
  parallel_chunks(n, grain,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
}

}  // namespace anr
