// Deterministic, explicitly-seeded randomness.
//
// Every stochastic piece of the library (initial robot scatter, Lloyd
// jitter, workload generators) takes an Rng by reference so that a single
// seed reproduces an entire experiment bit-for-bit. No global RNG state.
#pragma once

#include <cstdint>
#include <random>

namespace anr {

/// Seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Standard normal sample scaled by `stddev`.
  double normal(double stddev) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace anr
