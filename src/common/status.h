// Typed error propagation for recoverable failures.
//
// ANR_CHECK / ContractViolation stay the right tool for programmer errors
// deep inside the geometry code — those should fail fast. But layers that
// face operators (the mission service, the fault-injection executor, the
// degraded-mode planner) must report *expected* failures — bad input, a
// hostile deployment, an exhausted retry budget — as values the caller can
// branch on, not as exceptions tunneled out of the solver stack.
#pragma once

#include <string>

namespace anr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< caller-supplied input is malformed
  kFailedPrecondition,  ///< input well-formed but violates a precondition
  kDeadlineExceeded,    ///< job missed its deadline
  kUnavailable,         ///< transient condition; retrying may succeed
  kResourceExhausted,   ///< queue/retry/backoff budget spent
  kInternal,            ///< unexpected failure escaping a lower layer
};

/// Stable lowercase name ("ok", "invalid_argument", ...).
const char* status_code_name(StatusCode code);

/// A status code plus a human-readable message. Default-constructed is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace anr
