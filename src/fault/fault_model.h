// FaultModel: pointwise evaluation of a FaultSchedule during execution.
//
// The ExecutionEngine asks, every tick, "what is wrong right now?" —
// which robots are dead or degraded, which links are down, how far the
// radio range has shrunk. The model answers from the schedule alone plus
// a noise seed, so an execution is a pure function of (plan, schedule,
// seed): position noise is a counter-free hash of (seed, robot, tick),
// never a shared RNG stream, so verdicts do not depend on query order.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_schedule.h"
#include "geom/vec2.h"

namespace anr::fault {

/// Per-robot fault state at one instant.
struct RobotFaultState {
  bool crashed = false;      ///< crash-stop fired at or before t
  double crash_time = 0.0;   ///< valid when crashed
  bool stuck = false;        ///< inside a kStuck window
  double speed_factor = 1.0; ///< min over active kSlowdown windows (1 = nominal)
  double noise_sigma = 0.0;  ///< max over active kPositionNoise windows
};

class FaultModel {
 public:
  /// `noise_seed` drives position-noise sampling only.
  FaultModel(FaultSchedule schedule, std::uint64_t noise_seed);

  const FaultSchedule& schedule() const { return schedule_; }

  RobotFaultState robot_state(int robot, double t) const;

  /// Effective communication-range factor at t: min severity over the
  /// active kRangeDegradation windows (1 when none).
  double range_factor(double t) const;

  /// True when the (a, b) link is inside an active kLinkDropout window.
  bool link_dropped(int a, int b, double t) const;

  /// Links down at t as unordered (min, max) pairs, schedule order.
  std::vector<std::pair<int, int>> dropped_links(double t) const;

  /// Events whose window opens in (t_prev, t] — for the injection log.
  std::vector<const FaultEvent*> activated(double t_prev, double t) const;
  /// Transient events whose window closes in (t_prev, t].
  std::vector<const FaultEvent*> cleared(double t_prev, double t) const;

  /// Deterministic GPS-noise offset for `robot` at `tick`, standard
  /// deviation `sigma` per axis. Pure function of (seed, robot, tick).
  Vec2 noise_offset(int robot, std::int64_t tick, double sigma) const;

 private:
  FaultSchedule schedule_;
  std::uint64_t noise_seed_;
};

}  // namespace anr::fault
