#include "fault/fault_model.h"

#include <algorithm>
#include <cmath>

namespace anr::fault {

namespace {

bool window_active(const FaultEvent& e, double t) {
  if (e.kind == FaultKind::kCrash) return t >= e.t_start;
  return t >= e.t_start && t < e.t_end();
}

// splitmix64: the standard 64-bit finalizer-style mixer. Good avalanche,
// stateless — exactly what a (seed, robot, tick) -> noise hash needs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in (0, 1] from a hash (never 0 so log() is safe).
double unit_open(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

FaultModel::FaultModel(FaultSchedule schedule, std::uint64_t noise_seed)
    : schedule_(std::move(schedule)), noise_seed_(noise_seed) {
  schedule_.normalize();
}

RobotFaultState FaultModel::robot_state(int robot, double t) const {
  RobotFaultState s;
  for (const FaultEvent& e : schedule_.events) {
    if (e.robot != robot) continue;
    switch (e.kind) {
      case FaultKind::kCrash:
        if (t >= e.t_start && (!s.crashed || e.t_start < s.crash_time)) {
          s.crashed = true;
          s.crash_time = e.t_start;
        }
        break;
      case FaultKind::kStuck:
        if (window_active(e, t)) s.stuck = true;
        break;
      case FaultKind::kSlowdown:
        if (window_active(e, t)) {
          s.speed_factor = std::min(s.speed_factor, e.severity);
        }
        break;
      case FaultKind::kPositionNoise:
        if (window_active(e, t)) {
          s.noise_sigma = std::max(s.noise_sigma, e.severity);
        }
        break;
      default:
        break;
    }
  }
  return s;
}

double FaultModel::range_factor(double t) const {
  double f = 1.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kRangeDegradation && window_active(e, t)) {
      f = std::min(f, e.severity);
    }
  }
  return f;
}

bool FaultModel::link_dropped(int a, int b, double t) const {
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind != FaultKind::kLinkDropout || !window_active(e, t)) continue;
    if ((e.link_a == a && e.link_b == b) || (e.link_a == b && e.link_b == a)) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<int, int>> FaultModel::dropped_links(double t) const {
  std::vector<std::pair<int, int>> out;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kLinkDropout && window_active(e, t)) {
      out.emplace_back(std::min(e.link_a, e.link_b),
                       std::max(e.link_a, e.link_b));
    }
  }
  return out;
}

std::vector<const FaultEvent*> FaultModel::activated(double t_prev,
                                                     double t) const {
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& e : schedule_.events) {
    if (e.t_start > t_prev && e.t_start <= t) out.push_back(&e);
  }
  return out;
}

std::vector<const FaultEvent*> FaultModel::cleared(double t_prev,
                                                   double t) const {
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kCrash) continue;
    double end = e.t_end();
    if (end > t_prev && end <= t) out.push_back(&e);
  }
  return out;
}

Vec2 FaultModel::noise_offset(int robot, std::int64_t tick,
                              double sigma) const {
  if (sigma <= 0.0) return {};
  std::uint64_t base =
      mix64(noise_seed_ ^ mix64(static_cast<std::uint64_t>(robot) ^
                                (static_cast<std::uint64_t>(tick) << 20)));
  double u1 = unit_open(base);
  double u2 = unit_open(mix64(base));
  // Box–Muller: two independent N(0, sigma) axes from two uniforms.
  double r = sigma * std::sqrt(-2.0 * std::log(u1));
  double phi = 2.0 * 3.14159265358979323846 * u2;
  return {r * std::cos(phi), r * std::sin(phi)};
}

}  // namespace anr::fault
