#include "fault/fault_schedule.h"

#include <algorithm>
#include <cmath>

namespace anr::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStuck:
      return "stuck";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kPositionNoise:
      return "position_noise";
    case FaultKind::kLinkDropout:
      return "link_dropout";
    case FaultKind::kRangeDegradation:
      return "range_degradation";
  }
  return "unknown";
}

void FaultSchedule::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_start < b.t_start;
                   });
}

namespace {

bool finite(double v) { return std::isfinite(v); }

Status bad(const FaultEvent& e, const std::string& why) {
  return Status::InvalidArgument(std::string(fault_kind_name(e.kind)) +
                                 " event at t=" + std::to_string(e.t_start) +
                                 ": " + why);
}

}  // namespace

Status FaultSchedule::validate(int num_robots) const {
  for (const FaultEvent& e : events) {
    if (!finite(e.t_start) || e.t_start < 0.0) {
      return bad(e, "t_start must be finite and >= 0");
    }
    if (!finite(e.duration) || e.duration < 0.0) {
      return bad(e, "duration must be finite and >= 0");
    }
    if (!finite(e.severity)) return bad(e, "severity must be finite");
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kStuck:
        if (e.robot < 0 || e.robot >= num_robots) {
          return bad(e, "robot index out of range");
        }
        break;
      case FaultKind::kSlowdown:
        if (e.robot < 0 || e.robot >= num_robots) {
          return bad(e, "robot index out of range");
        }
        if (e.severity < 0.0 || e.severity >= 1.0) {
          return bad(e, "slowdown severity must be in [0, 1)");
        }
        break;
      case FaultKind::kPositionNoise:
        if (e.robot < 0 || e.robot >= num_robots) {
          return bad(e, "robot index out of range");
        }
        if (e.severity < 0.0) return bad(e, "noise sigma must be >= 0");
        break;
      case FaultKind::kLinkDropout:
        if (e.link_a < 0 || e.link_a >= num_robots || e.link_b < 0 ||
            e.link_b >= num_robots || e.link_a == e.link_b) {
          return bad(e, "link endpoints must be two distinct robots");
        }
        break;
      case FaultKind::kRangeDegradation:
        if (e.severity <= 0.0 || e.severity > 1.0) {
          return bad(e, "range factor must be in (0, 1]");
        }
        break;
    }
  }
  return Status::Ok();
}

FaultSchedule random_campaign(Rng& rng, int num_robots, double t0, double t1,
                              const CampaignOptions& opt) {
  FaultSchedule sched;
  const double span = t1 - t0;
  auto draw_start = [&] {
    return t0 + span * rng.uniform(opt.start_frac_min, opt.start_frac_max);
  };
  auto draw_duration = [&] {
    return span * rng.uniform(opt.duration_frac_min, opt.duration_frac_max);
  };

  // Crash subjects without replacement: a robot that crash-stops twice
  // would make "every crash absorbed" unverifiable.
  std::vector<int> pool(static_cast<std::size_t>(num_robots));
  for (int i = 0; i < num_robots; ++i) pool[static_cast<std::size_t>(i)] = i;
  int crashes = std::min(opt.crashes, num_robots > 1 ? num_robots - 1 : 0);
  for (int c = 0; c < crashes; ++c) {
    int pick = rng.uniform_int(0, static_cast<int>(pool.size()) - 1);
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.robot = pool[static_cast<std::size_t>(pick)];
    pool.erase(pool.begin() + pick);
    e.t_start = draw_start();
    sched.add(e);
  }
  for (int i = 0; i < opt.stuck; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kStuck;
    e.robot = rng.uniform_int(0, num_robots - 1);
    e.t_start = draw_start();
    e.duration = draw_duration();
    sched.add(e);
  }
  for (int i = 0; i < opt.slowdowns; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSlowdown;
    e.robot = rng.uniform_int(0, num_robots - 1);
    e.t_start = draw_start();
    e.duration = draw_duration();
    e.severity = rng.uniform(opt.slowdown_min, opt.slowdown_max);
    sched.add(e);
  }
  for (int i = 0; i < opt.noise_bursts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kPositionNoise;
    e.robot = rng.uniform_int(0, num_robots - 1);
    e.t_start = draw_start();
    e.duration = draw_duration();
    e.severity = rng.uniform(opt.noise_sigma_min, opt.noise_sigma_max);
    sched.add(e);
  }
  for (int i = 0; i < opt.link_dropouts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkDropout;
    e.link_a = rng.uniform_int(0, num_robots - 1);
    do {
      e.link_b = rng.uniform_int(0, num_robots - 1);
    } while (e.link_b == e.link_a);
    e.t_start = draw_start();
    e.duration = draw_duration();
    sched.add(e);
  }
  for (int i = 0; i < opt.range_degradations; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kRangeDegradation;
    e.t_start = draw_start();
    e.duration = draw_duration();
    e.severity = rng.uniform(opt.range_factor_min, opt.range_factor_max);
    sched.add(e);
  }
  sched.normalize();
  return sched;
}

}  // namespace anr::fault
