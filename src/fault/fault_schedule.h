// Fault campaigns: what goes wrong, to whom, and when.
//
// The paper's marching guarantee (global connectivity C = 1 at every
// instant, Def. 2) is exactly what makes a swarm recoverable — "the
// failure of an individual robot can be recovered by its peers" (Sec. I).
// Exercising that claim needs a reproducible way to break things. A
// FaultSchedule is a time-ordered list of fault events, either scripted
// by hand or drawn from a seeded Rng (common/rng), so a campaign replays
// bit-for-bit from its seed. The ExecutionEngine consumes schedules
// through FaultModel (fault_model.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace anr::fault {

/// Taxonomy of injectable faults.
enum class FaultKind {
  kCrash,            ///< crash-stop: robot dies (actuation + radio), permanent
  kStuck,            ///< actuation frozen for a window; radio alive
  kSlowdown,         ///< actuation at `severity` (< 1) of nominal speed
  kPositionNoise,    ///< GPS noise: position jittered with sigma `severity` m
  kLinkDropout,      ///< one link (link_a, link_b) down for a window
  kRangeDegradation, ///< effective r_c scaled by `severity` (< 1) for a window
};

/// Stable lowercase name ("crash", "stuck", ...).
const char* fault_kind_name(FaultKind kind);

/// One fault: a kind, a subject (robot or link), a time window, a severity.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int robot = -1;               ///< subject robot; unused for link/range kinds
  int link_a = -1, link_b = -1; ///< subject link for kLinkDropout
  double t_start = 0.0;
  double duration = 0.0;        ///< window length; ignored for kCrash
  /// Kind-dependent magnitude: speed factor in [0,1) for kSlowdown, noise
  /// sigma in meters for kPositionNoise, range factor in (0,1] for
  /// kRangeDegradation; unused otherwise.
  double severity = 0.0;

  double t_end() const {
    return kind == FaultKind::kCrash ? 1e300 : t_start + duration;
  }
};

/// A campaign: fault events sorted by (t_start, stable order).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// Appends an event (resort with normalize() before executing).
  void add(FaultEvent e) { events.push_back(e); }

  /// Stable-sorts events by start time.
  void normalize();

  /// Checks every event against a swarm of `num_robots`: subject indices
  /// in range, windows non-negative, severities in their legal ranges.
  Status validate(int num_robots) const;

  bool empty() const { return events.empty(); }
};

/// Knobs for the seeded random campaign generator. Counts are events per
/// kind; windows/severities are drawn uniformly from the given ranges.
struct CampaignOptions {
  int crashes = 1;
  int stuck = 1;
  int slowdowns = 1;
  int noise_bursts = 1;
  int link_dropouts = 2;
  int range_degradations = 0;

  /// Fault start times are drawn from [t0 + start_frac_min * (t1 - t0),
  /// t0 + start_frac_max * (t1 - t0)].
  double start_frac_min = 0.05;
  double start_frac_max = 0.6;
  /// Transient windows last [duration_frac_min, duration_frac_max] of
  /// (t1 - t0).
  double duration_frac_min = 0.1;
  double duration_frac_max = 0.3;

  double slowdown_min = 0.2, slowdown_max = 0.6;   ///< speed factors
  double noise_sigma_min = 1.0, noise_sigma_max = 6.0;  ///< meters
  double range_factor_min = 0.7, range_factor_max = 0.95;
};

/// Draws a campaign over robots [0, num_robots) and the horizon [t0, t1]
/// from `rng`. Same seed, same options, same swarm size -> identical
/// schedule. Crash subjects are drawn without replacement so no robot
/// crashes twice.
FaultSchedule random_campaign(Rng& rng, int num_robots, double t0, double t1,
                              const CampaignOptions& opt = {});

}  // namespace anr::fault
