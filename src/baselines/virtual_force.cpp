#include "baselines/virtual_force.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/grid_index.h"
#include "march/metrics.h"

namespace anr {

VirtualForcePlanner::VirtualForcePlanner(FieldOfInterest m1,
                                         FieldOfInterest m2_shape, double r_c,
                                         VirtualForceOptions options)
    : m1_(std::move(m1)),
      m2_(std::move(m2_shape)),
      r_c_(r_c),
      opt_(options) {
  ANR_CHECK(r_c_ > 0.0 && opt_.steps >= 1);
}

MarchPlan VirtualForcePlanner::plan(const std::vector<Vec2>& positions,
                                    Vec2 m2_offset) const {
  const std::size_t n = positions.size();
  ANR_CHECK(n >= 1);
  FieldOfInterest m2 = m2_.translated(m2_offset);
  Vec2 goal = m2.centroid();
  double d0 = opt_.spacing_frac * r_c_;

  MarchPlan plan;
  plan.start = positions;
  plan.transition_end = opt_.transition_time;
  plan.total_time = opt_.transition_time;
  plan.trajectories.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    plan.trajectories[i].append(positions[i], 0.0);
  }

  std::vector<Vec2> cur = positions;
  double dt = opt_.transition_time / opt_.steps;
  double step_cap = opt_.max_step * r_c_;

  for (int step = 1; step <= opt_.steps; ++step) {
    GridIndex index(cur, r_c_);
    std::vector<Vec2> force(n, Vec2{});
    for (std::size_t i = 0; i < n; ++i) {
      // (1) Attraction toward the target FoI until inside.
      if (!m2.contains(cur[i])) {
        force[i] += (goal - cur[i]).normalized() * (opt_.attraction_gain * r_c_);
      }
      // (2) Springs against in-range neighbors: zero at d0.
      for (int j : index.query_radius(cur[i], r_c_)) {
        if (static_cast<std::size_t>(j) == i) continue;
        Vec2 d = cur[i] - cur[static_cast<std::size_t>(j)];
        double len = d.norm();
        if (len < 1e-9) continue;
        force[i] += d * (opt_.spring_gain * (d0 - len) / len);
      }
      // (3) Boundary push-back once inside M2.
      if (m2.contains(cur[i])) {
        double b = m2.distance_to_boundary(cur[i]);
        if (b < d0 / 2.0) {
          Vec2 away = cur[i] - m2.outer().closest_boundary_point(cur[i]);
          double hole = m2.distance_to_nearest_hole(cur[i]);
          if (hole < b) {
            // Nearest boundary is a hole: push away from it instead.
            for (const Polygon& hp : m2.holes()) {
              if (hp.boundary_distance(cur[i]) <= hole + 1e-9) {
                away = cur[i] - hp.closest_boundary_point(cur[i]);
                break;
              }
            }
          }
          if (away.norm() > 1e-9) {
            force[i] += away.normalized() * (opt_.boundary_gain * (d0 / 2.0 - b));
          }
        }
      }
    }
    double t = step * dt;
    for (std::size_t i = 0; i < n; ++i) {
      Vec2 move = force[i];
      double len = move.norm();
      if (len > step_cap) move = move * (step_cap / len);
      Vec2 next = cur[i] + move;
      // Robots may not enter holes.
      if (m2.contains(cur[i]) && !m2.contains(next)) next = m2.clamp_inside(next);
      if (m1_.contains(cur[i]) && !m1_.contains(next) && !m2.contains(next)) {
        // Leaving M1 toward M2 is fine; entering an M1 hole is not.
        if (m1_.distance_to_nearest_hole(next) <
            m1_.outer().boundary_distance(next)) {
          next = m1_.clamp_inside(next);
        }
      }
      if (distance(next, cur[i]) > 1e-9) {
        plan.trajectories[i].append(next, t);
        cur[i] = next;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Close the timeline so all trajectories share the end time.
    plan.trajectories[i].append(cur[i], opt_.transition_time);
  }
  plan.mapped_targets = cur;
  plan.final_positions = cur;
  plan.predicted_link_ratio = predicted_stable_link_ratio(
      positions, cur, communication_links(positions, r_c_), r_c_);
  return plan;
}

}  // namespace anr
