#include "baselines/direct_translation.h"

#include <algorithm>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "march/metrics.h"
#include "matching/hungarian.h"

namespace anr {

DirectTranslationPlanner::DirectTranslationPlanner(FieldOfInterest m1,
                                                   FieldOfInterest m2_shape,
                                                   double r_c, int num_robots,
                                                   BaselineOptions options)
    : m1_(std::move(m1)),
      m2_(std::move(m2_shape)),
      r_c_(r_c),
      opt_(options) {
  ANR_CHECK(num_robots >= 1 && r_c_ > 0.0);
  coverage_ = optimal_coverage_positions(m2_, num_robots, opt_.coverage_seed,
                                         uniform_density(), opt_.coverage)
                  .positions;
}

MarchPlan DirectTranslationPlanner::plan(const std::vector<Vec2>& positions,
                                         Vec2 m2_offset) const {
  ANR_CHECK(positions.size() == coverage_.size());
  const std::size_t n = positions.size();

  Vec2 delta = (m2_.centroid() + m2_offset) - m1_.centroid();

  // Phase 1: rigid translation over [0, T1]. Phase durations scale with
  // the distance covered so all robots keep comparable speeds.
  std::vector<Vec2> translated(n);
  for (std::size_t i = 0; i < n; ++i) translated[i] = positions[i] + delta;

  std::vector<Vec2> goals(n);
  for (std::size_t i = 0; i < n; ++i) goals[i] = coverage_[i] + m2_offset;
  AssignmentResult match = min_distance_assignment(translated, goals);

  double t1 = opt_.transition_time;
  double max_local = 1e-9;
  for (std::size_t i = 0; i < n; ++i) {
    max_local = std::max(
        max_local,
        distance(translated[i],
                 goals[static_cast<std::size_t>(match.row_to_col[i])]));
  }
  double speed = std::max(delta.norm(), max_local) / opt_.transition_time;
  double t2 = t1 + max_local / speed;

  std::vector<Polygon> obstacles = m1_.holes();
  for (const Polygon& h : m2_.holes()) obstacles.push_back(h.translated(m2_offset));

  MarchPlan plan;
  plan.start = positions;
  plan.transition_end = t2;
  plan.total_time = t2;
  plan.mapped_targets.resize(n);
  plan.final_positions.resize(n);
  plan.trajectories.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 q = goals[static_cast<std::size_t>(match.row_to_col[i])];
    plan.mapped_targets[i] = translated[i];
    plan.final_positions[i] = q;
    // Rigid leg, then local Hungarian leg, both with hole detours.
    Trajectory leg1 =
        make_timed_path(positions[i], translated[i], 0.0, t1, obstacles);
    Trajectory leg2 = make_timed_path(translated[i], q, t1, t2, obstacles);
    Trajectory full = std::move(leg1);
    for (std::size_t w = 1; w < leg2.num_waypoints(); ++w) {
      full.append(leg2.waypoints()[w], leg2.times()[w]);
    }
    plan.trajectories.push_back(std::move(full));
  }
  plan.predicted_link_ratio = predicted_stable_link_ratio(
      positions, plan.final_positions, communication_links(positions, r_c_),
      r_c_);
  return plan;
}

}  // namespace anr
