#include "baselines/hungarian_march.h"

#include "common/check.h"
#include "coverage/lloyd.h"
#include "march/metrics.h"
#include "matching/hungarian.h"

namespace anr {

HungarianMarchPlanner::HungarianMarchPlanner(FieldOfInterest m1,
                                             FieldOfInterest m2_shape,
                                             double r_c, int num_robots,
                                             BaselineOptions options)
    : m1_(std::move(m1)),
      m2_(std::move(m2_shape)),
      r_c_(r_c),
      opt_(options) {
  ANR_CHECK(num_robots >= 1 && r_c_ > 0.0);
  coverage_ = optimal_coverage_positions(m2_, num_robots, opt_.coverage_seed,
                                         uniform_density(), opt_.coverage)
                  .positions;
}

MarchPlan HungarianMarchPlanner::plan(const std::vector<Vec2>& positions,
                                      Vec2 m2_offset) const {
  ANR_CHECK(positions.size() == coverage_.size());
  const std::size_t n = positions.size();

  std::vector<Vec2> goals(n);
  for (std::size_t i = 0; i < n; ++i) goals[i] = coverage_[i] + m2_offset;
  AssignmentResult match = min_distance_assignment(positions, goals);

  MarchPlan plan;
  plan.start = positions;
  plan.transition_end = opt_.transition_time;
  plan.total_time = opt_.transition_time;

  std::vector<Polygon> obstacles = m1_.holes();
  for (const Polygon& h : m2_.holes()) obstacles.push_back(h.translated(m2_offset));

  plan.mapped_targets.resize(n);
  plan.final_positions.resize(n);
  plan.trajectories.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 q = goals[static_cast<std::size_t>(match.row_to_col[i])];
    plan.mapped_targets[i] = q;
    plan.final_positions[i] = q;
    plan.trajectories.push_back(
        make_timed_path(positions[i], q, 0.0, opt_.transition_time, obstacles));
  }
  plan.predicted_link_ratio = predicted_stable_link_ratio(
      positions, plan.mapped_targets, communication_links(positions, r_c_),
      r_c_);
  return plan;
}

}  // namespace anr
