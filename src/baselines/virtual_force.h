// Baseline: virtual-force (potential-field) relocation — the earliest
// family of coverage-movement algorithms the paper cites ([1] Howard et
// al., [2] Poduri & Sukhatme, [3] Zou & Chakrabarty).
//
// Each robot feels: (1) an attraction toward the target FoI (until it is
// inside), (2) pairwise spring forces against robots within range —
// repulsive when closer than the preferred lattice spacing, mildly
// attractive when farther (this is [2]'s connectivity-aware variant), and
// (3) repulsion from hole and outer boundaries once inside. Motion is
// damped gradient descent, simulated in fixed time steps.
//
// The paper argues this family handles a *single* FoI well but has no
// mechanism for coordinated FoI-to-FoI transitions; this baseline lets
// the benches show that quantitatively (slow convergence, no guarantees).
#pragma once

#include "foi/foi.h"
#include "march/planner.h"

namespace anr {

struct VirtualForceOptions {
  double transition_time = 1.0;  ///< time allotted to reach/cover M2
  int steps = 400;               ///< simulation steps
  /// Preferred inter-robot spacing as a fraction of r_c; forces are zero
  /// at exactly this distance.
  double spacing_frac = 0.75;
  double attraction_gain = 1.0;   ///< pull toward the target FoI
  double spring_gain = 0.6;       ///< inter-robot spring strength
  double boundary_gain = 1.5;     ///< push-back from boundaries
  double max_step = 0.1;          ///< per-step travel cap, fraction of r_c
};

/// Plans a virtual-force march into translates of the M2 shape.
class VirtualForcePlanner {
 public:
  VirtualForcePlanner(FieldOfInterest m1, FieldOfInterest m2_shape, double r_c,
                      VirtualForceOptions options = {});

  MarchPlan plan(const std::vector<Vec2>& positions, Vec2 m2_offset) const;

 private:
  FieldOfInterest m1_;
  FieldOfInterest m2_;
  double r_c_;
  VirtualForceOptions opt_;
};

}  // namespace anr
