// Baseline: pure Hungarian marching (paper Sec. IV).
//
// "Directly applies Hungarian algorithm to find the moving path of the
// group of mobile robots from M1 to the optimal coverage positions in M2,
// which should achieve the minimum total moving distance among all
// possible methods." The optimal coverage positions are assumed
// precomputed (the paper grants both comparison methods that knowledge).
#pragma once

#include <memory>
#include <vector>

#include "foi/foi.h"
#include "march/planner.h"

namespace anr {

struct BaselineOptions {
  double transition_time = 1.0;
  std::uint64_t coverage_seed = 17;  ///< seed for the precomputed CVT in M2
  LloydOptions coverage;
};

/// Plans Hungarian marches into translates of the M2 shape. Construction
/// precomputes the optimal coverage positions (origin frame).
class HungarianMarchPlanner {
 public:
  HungarianMarchPlanner(FieldOfInterest m1, FieldOfInterest m2_shape,
                        double r_c, int num_robots,
                        BaselineOptions options = {});

  MarchPlan plan(const std::vector<Vec2>& positions, Vec2 m2_offset) const;

  /// The precomputed coverage positions (origin frame).
  const std::vector<Vec2>& coverage_positions() const { return coverage_; }

 private:
  FieldOfInterest m1_;
  FieldOfInterest m2_;
  double r_c_;
  BaselineOptions opt_;
  std::vector<Vec2> coverage_;
};

}  // namespace anr
