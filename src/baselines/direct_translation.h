// Baseline: direct translation marching (paper Sec. IV).
//
// "Computes the centroids of both the current and target FoIs M1 and M2
// and a rigid translation from the centroid of M1 to the centroid of M2.
// The mobile robots move from M1 to M2 based on the rigid translation,
// and then adjust themselves to optimal coverage positions in M2 based on
// Hungarian method." The rigid phase trivially preserves every link; the
// Hungarian shuffle afterwards is where links break.
#pragma once

#include "baselines/hungarian_march.h"

namespace anr {

/// Plans direct-translation marches into translates of the M2 shape.
class DirectTranslationPlanner {
 public:
  DirectTranslationPlanner(FieldOfInterest m1, FieldOfInterest m2_shape,
                           double r_c, int num_robots,
                           BaselineOptions options = {});

  MarchPlan plan(const std::vector<Vec2>& positions, Vec2 m2_offset) const;

  const std::vector<Vec2>& coverage_positions() const { return coverage_; }

 private:
  FieldOfInterest m1_;
  FieldOfInterest m2_;
  double r_c_;
  BaselineOptions opt_;
  std::vector<Vec2> coverage_;
};

}  // namespace anr
